package slurm

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"ecosched/internal/hw"
	"ecosched/internal/metrics"
	"ecosched/internal/perfmodel"
	"ecosched/internal/simclock"
	"ecosched/internal/trace"
	"ecosched/internal/workload"
)

// Metric, span, and event names (ecolint/metricname: package-level
// constants in the chronus.* namespace).
const (
	spanSubmit    = "chronus.slurm.submit"
	spanSchedule  = "chronus.slurm.schedule"
	eventJobStart = "chronus.job.start"
	eventJobEnd   = "chronus.job.end"

	metricJobsSubmitted  = "chronus.slurm.jobs.submitted"
	metricJobsRejected   = "chronus.slurm.jobs.rejected"
	metricJobsCompleted  = "chronus.slurm.jobs.completed"
	metricJobsFailed     = "chronus.slurm.jobs.failed"
	metricJobsCancelled  = "chronus.slurm.jobs.cancelled"
	metricBudgetOverruns = "chronus.slurm.plugin.budget_overruns"
)

// MetricChainLatency is the bucketed per-submission plugin-chain
// latency histogram. Exported so the root package's loadgen harness
// and SLO evaluation can find it in a snapshot by name.
const MetricChainLatency = "chronus.slurm.plugin.chain_latency"

// Workload models what a job's executable does on a node: how long it
// runs in a given configuration and at what sustained throughput. The
// controller resolves workloads from the description's Shape when set,
// falling back to the registry keyed by the job's binary path.
// workload.Shape satisfies this contract, and is the one description
// type generated, replayed and hand-built jobs share.
type Workload interface {
	Name() string
	// Plan returns (runtime, sustained GFLOPS) for the configuration
	// on the node. A zero GFLOPS is valid for non-compute jobs.
	Plan(node *hw.Node, cfg perfmodel.Config) (time.Duration, float64)
}

// FixedWorkWorkload is a job with a fixed FLOP budget — the HPCG
// evaluation jobs: runtime = work / throughput(config).
//
// Deprecated: use workload.FixedWork, the unified job-shape
// vocabulary. This wrapper delegates to it.
type FixedWorkWorkload struct {
	Label string
	GFLOP float64
}

// Name implements Workload.
func (w FixedWorkWorkload) Name() string { return w.Label }

// Plan implements Workload.
func (w FixedWorkWorkload) Plan(node *hw.Node, cfg perfmodel.Config) (time.Duration, float64) {
	return workload.FixedWork(w.Label, w.GFLOP).Plan(node, cfg)
}

// SleepWorkload runs for a fixed duration regardless of configuration.
//
// Deprecated: use workload.Sleep, the unified job-shape vocabulary.
// This wrapper delegates to it.
type SleepWorkload struct {
	Label string
	D     time.Duration
}

// Name implements Workload.
func (w SleepWorkload) Name() string { return w.Label }

// Plan implements Workload.
func (w SleepWorkload) Plan(node *hw.Node, cfg perfmodel.Config) (time.Duration, float64) {
	return workload.Sleep(w.Label, w.D).Plan(node, cfg)
}

// NodeInfo is one sinfo row.
type NodeInfo struct {
	Name  string
	State string // "idle" or "alloc"
	Cores int
	JobID int // 0 when idle
}

// nodeD is a slurmd: the per-node daemon owning the hardware.
type nodeD struct {
	name    string
	idx     int // construction index; the first-fit placement order
	hw      *hw.Node
	current *Job
	hwJob   *hw.Job
	// coJob is the co-scheduled secondary running beside current, when
	// the co-scheduling policy paired one (energy.go).
	coJob   *Job
	drained bool
	// free marks the node idle, undrained, and listed in its
	// partitions' free bitmaps. Claiming a shared node through one
	// partition clears the bit everywhere (unlistFree).
	free  bool
	parts []*partition
	// slots[i] is the node's bitmap slot in parts[i].
	slots []int
	// spec caches hw.Spec() — read on every placement probe.
	spec hw.NodeSpec
	// pm/idleDrawW are the node's power model and idle draw, set only
	// when the cluster-policy layer is active (energy.go).
	pm        PowerModel
	idleDrawW float64
	// Governor state saved while a --cpu-freq job pins userspace.
	savedGovernor hw.GovernorKind
	pinned        bool
}

// pinFrequency switches the node to the userspace governor at the
// job's requested frequency — what slurmd's cpu-freq support does —
// remembering the previous governor for restoration at job end.
func (n *nodeD) pinFrequency(khz int) error {
	n.savedGovernor = n.hw.Governor()
	if err := n.hw.SetGovernor(hw.GovernorUserspace); err != nil {
		return err
	}
	if err := n.hw.SetUserspaceFreq(khz); err != nil {
		return err
	}
	n.pinned = true
	return nil
}

// unpinFrequency restores the pre-job governor.
func (n *nodeD) unpinFrequency() {
	if !n.pinned {
		return
	}
	n.pinned = false
	_ = n.hw.SetGovernor(n.savedGovernor)
}

// Controller is the simulated slurmctld.
type Controller struct {
	sim        *simclock.Sim
	conf       Conf
	nodes      []*nodeD
	parts      []*partition
	partByName map[string]*partition
	plugins    []SubmitPlugin
	// jobs is the arena-indexed job table: job id i lives at
	// jobs[(i-1)>>jobChunkBits][(i-1)&jobChunkMask]. Ids are assigned
	// monotonically and never reused, so the hot dispatch path resolves
	// a job with a bounds check and two slice loads instead of a map
	// probe. Fixed-size chunks grow the table without ever copying or
	// re-scanning the pointers already placed — at millions of jobs the
	// doubling slice was half the simulator's allocation volume.
	// Retired slots are nil.
	jobs [][]*Job
	// jobPool recycles retired Job records in aggregate mode, where no
	// caller retains them past the completion hooks.
	jobPool []*Job
	// descScratch is the submission description the plugin chain and
	// validation operate on. Submit copies its argument here so the
	// mutable description never escapes to the heap; submissions are
	// strictly sequential (plugins cannot submit), so one slot is safe.
	descScratch JobDesc
	nextID      int
	workloads map[string]Workload
	fallback  Workload
	acct      *Accounting
	onDone    []func(*Job)
	policy    SchedulingPolicy
	usage     map[uint32]float64 // user id → consumed CPU-seconds
	// userSlots assigns each user id a dense index into usageBy, the
	// slice mirror of usage that keyed scheduling passes read: a slice
	// load per pending job instead of a map probe. Both stores receive
	// the same increments in the same order, so they agree bit-exactly.
	userSlots map[uint32]int32
	usageBy   []float64
	// usageSink, when set, observes every fair-share usage increment
	// (WithUsageSink) — the hook the parallel partition lanes use to
	// replicate usage across lane controllers at window barriers.
	usageSink func(uid uint32, cpuSeconds float64)
	metrics   *metrics.Registry // nil = unobserved
	tracer    *trace.Tracer     // nil = untraced
	// aggregate retires terminal jobs from memory (see
	// WithAggregateAccounting); retired keeps their final state codes
	// by id so dependency resolution still works after retirement.
	aggregate bool
	retired   []uint8
	// depPending counts queued jobs with afterok dependencies: while
	// non-zero, any job completion reschedules every partition, since
	// the dependent may be queued far from the freed node.
	depPending int

	// batched defers scheduling passes to one flush event per clock
	// instant (WithBatchedScheduling); dirtyParts counts partitions
	// awaiting that flush.
	batched    bool
	flushArmed bool
	dirtyParts int

	// Pre-allocated simclock Actions: job completion and the batched
	// scheduling flush are the two per-job hot events, fired through
	// these handles with zero per-event allocation. deferAct wakes a
	// partition whose energy-deferral hold may have expired.
	compAct  completeAction
	flushAct flushAction
	deferAct deferAction

	// Cluster energy policies (energy.go). epActive gates every policy
	// hook on the dispatch path; a controller built without
	// WithSchedPolicies pays one predictable branch per site.
	epActive       bool
	capActive      bool
	freqCap        bool
	cosched        bool
	coschedPenalty float64
	deferral       bool
	deferSignal    DeferralSignal
	deferThreshold float64
	deferMax       time.Duration
	deferCheck     time.Duration
	policyNames    []string
	ptotals        PolicyTotals

	// activePlug caches the slurm.conf-resolved plugin chain;
	// invalidated by RegisterPlugin.
	activePlug   []SubmitPlugin
	activePlugOK bool

	// Cached metric handles (nil-safe; refreshed by SetMetrics) so the
	// event loop skips the registry's map lookups.
	mSubmitted    *metrics.Counter
	mRejected     *metrics.Counter
	mCompleted    *metrics.Counter
	mFailed       *metrics.Counter
	mCancelled    *metrics.Counter
	mOverruns     *metrics.Counter
	mChainLatency *metrics.BucketedHistogram
	mCapDenials   *metrics.Counter
	mFreqCapped   *metrics.Counter
	mDeferred     *metrics.Counter
	mCoScheduled  *metrics.Counter
}

// Retired-state codes: one byte per retired job instead of a
// JobState string header.
const (
	retiredNone uint8 = iota
	retiredCompleted
	retiredFailed
	retiredCancelled
)

func retireCode(s JobState) uint8 {
	switch s {
	case StateCompleted:
		return retiredCompleted
	case StateFailed:
		return retiredFailed
	default:
		return retiredCancelled
	}
}

func retiredState(code uint8) JobState {
	switch code {
	case retiredCompleted:
		return StateCompleted
	case retiredFailed:
		return StateFailed
	case retiredCancelled:
		return StateCancelled
	}
	return ""
}

// completeAction fires a job's scheduled completion. The event is
// uncancellable (simclock fast path), so Fire re-validates against the
// arena: a job cancelled meanwhile is terminal (or retired to a nil
// slot) and the stale event is dropped.
type completeAction struct{ c *Controller }

func (a *completeAction) Fire(arg uint64) { a.c.completeJob(int(arg)) }

// flushAction runs the deferred scheduling passes of the current
// instant (batched mode).
type flushAction struct{ c *Controller }

func (a *flushAction) Fire(uint64) { a.c.flushScheduling() }

// NewController builds a controller over the given nodes with the
// given configuration, all partitions sharing the node pool.
//
// Deprecated: use NewCluster, which scales to per-partition pools and
// policies; this wrapper is equivalent to
// NewCluster(sim, conf, WithNodes(nodes...)).
func NewController(sim *simclock.Sim, conf Conf, nodes ...*hw.Node) (*Controller, error) {
	return NewCluster(sim, conf, WithNodes(nodes...))
}

// cacheMetrics resolves the controller's metric handles against the
// current registry (all nil when unobserved — the types are nil-safe).
func (c *Controller) cacheMetrics() {
	c.mSubmitted = c.metrics.Counter(metricJobsSubmitted)
	c.mRejected = c.metrics.Counter(metricJobsRejected)
	c.mCompleted = c.metrics.Counter(metricJobsCompleted)
	c.mFailed = c.metrics.Counter(metricJobsFailed)
	c.mCancelled = c.metrics.Counter(metricJobsCancelled)
	c.mOverruns = c.metrics.Counter(metricBudgetOverruns)
	c.mChainLatency = c.metrics.BucketedHistogram(MetricChainLatency)
	c.mCapDenials = c.metrics.Counter(metricCapDenials)
	c.mFreqCapped = c.metrics.Counter(metricFreqCapped)
	c.mDeferred = c.metrics.Counter(metricDeferred)
	c.mCoScheduled = c.metrics.Counter(metricCoScheduled)
	for _, p := range c.parts {
		p.queueGauge = c.metrics.Gauge(metricPartQueuePrefix + p.name)
		p.occGauge = c.metrics.Gauge(metricPartOccPrefix + p.name)
		p.energyGauge = c.metrics.Gauge(metricPartEnergyPrefix + p.name)
		p.doneCount = c.metrics.Counter(metricPartDonePrefix + p.name)
	}
}

// Conf returns the parsed slurm.conf the controller runs under —
// read-only configuration for callers that need the budgets (the
// loadgen SLO evaluation) without re-parsing the file.
func (c *Controller) Conf() Conf { return c.conf }

// RegisterPlugin registers a submit plugin implementation. Only
// plugins named in the configuration's JobSubmitPlugins line are
// invoked, in configuration order — matching how Slurm loads the
// plugin only when slurm.conf enables it (paper §3.4.1).
func (c *Controller) RegisterPlugin(p SubmitPlugin) {
	c.plugins = append(c.plugins, p)
	c.activePlugOK = false
}

// RegisterWorkload maps a binary path to its workload model.
func (c *Controller) RegisterWorkload(binaryPath string, w Workload) {
	c.workloads[binaryPath] = w
}

// SetFallbackWorkload sets the workload used for unknown binaries.
func (c *Controller) SetFallbackWorkload(w Workload) { c.fallback = w }

// SetPolicy selects the scheduling policy for every partition
// (default FIFO). Use WithPartitionPolicy at construction for
// per-partition policies.
func (c *Controller) SetPolicy(p SchedulingPolicy) {
	c.policy = p
	for _, part := range c.parts {
		part.setPolicy(p)
	}
}

// SetMetrics attaches an observability registry; nil (the default)
// disables instrumentation.
func (c *Controller) SetMetrics(r *metrics.Registry) {
	c.metrics = r
	c.cacheMetrics()
}

// SetTracer attaches a decision tracer; nil (the default) disables
// tracing. Every submission then produces one trace (the plugin chain
// nests under it) and job lifecycle transitions become journal events.
func (c *Controller) SetTracer(t *trace.Tracer) { c.tracer = t }

// Policy returns the cluster-default scheduling policy.
func (c *Controller) Policy() SchedulingPolicy { return c.policy }

// UserUsageCPUSeconds reports a user's accumulated CPU-seconds, the
// fair-share input.
func (c *Controller) UserUsageCPUSeconds(uid uint32) float64 { return c.usage[uid] }

// AddUsage credits fair-share usage that accrued outside this
// controller — the lane-barrier replication path. It deliberately does
// not invoke the usage sink: the delta originated from a sibling
// controller's sink and echoing it back would double-count.
func (c *Controller) AddUsage(uid uint32, cpuSeconds float64) {
	c.addUsage(uid, c.slotFor(uid), cpuSeconds)
}

// Accounting returns the slurmdbd record store.
func (c *Controller) Accounting() *Accounting { return c.acct }

// OnCompletion registers a hook invoked when any job reaches a
// terminal state.
func (c *Controller) OnCompletion(fn func(*Job)) {
	c.onDone = append(c.onDone, fn)
}

// QueueDepth reports the pending-queue length of one partition.
func (c *Controller) QueueDepth(partition string) int {
	if len(c.parts) == 1 && c.parts[0].name == partition {
		return len(c.parts[0].pending)
	}
	if p, ok := c.partByName[partition]; ok {
		return len(p.pending)
	}
	return 0
}

// activePlugins returns the registered plugins enabled by slurm.conf,
// in configuration order. The resolved chain is cached — slurm.conf
// and the registration set change rarely, submissions happen millions
// of times — and invalidated by RegisterPlugin.
func (c *Controller) activePlugins() ([]SubmitPlugin, error) {
	if c.activePlugOK {
		return c.activePlug, nil
	}
	out := c.activePlug[:0]
	for _, name := range c.conf.JobSubmitPlugins {
		found := false
		for _, p := range c.plugins {
			if p.Name() == name {
				out = append(out, p)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("slurm: JobSubmitPlugins names %q but no such plugin is registered", name)
		}
	}
	c.activePlug = out
	c.activePlugOK = true
	return out, nil
}

// newJob takes a Job record off the pool (aggregate mode recycles
// retired ones) or allocates a fresh one. The record comes back
// zeroed.
func (c *Controller) newJob() *Job {
	if n := len(c.jobPool); n > 0 {
		j := c.jobPool[n-1]
		c.jobPool = c.jobPool[:n-1]
		*j = Job{}
		return j
	}
	//lint:ignore ecolint/zeroallocproof pool refill — amortized; retired jobs recycle through jobPool (alloc-check proves 0 allocs/op on the submit cycle)
	return &Job{}
}

// Job-table chunk geometry: 8192 ids per chunk ≈ 64 KB of pointers.
const (
	jobChunkBits = 13
	jobChunkSize = 1 << jobChunkBits
	jobChunkMask = jobChunkSize - 1
)

// jobByID resolves a live job from the arena, or nil (unknown id or
// retired).
func (c *Controller) jobByID(id int) *Job {
	if id >= 1 && id < c.nextID {
		idx := id - 1
		return c.jobs[idx>>jobChunkBits][idx&jobChunkMask]
	}
	return nil
}

// kick requests a scheduling pass for the partition: immediately in
// the default mode, or deferred to the instant's flush event in
// batched mode — many submissions and completions landing on one
// clock instant then cost one pass per partition instead of one per
// event.
func (c *Controller) kick(p *partition) {
	if !c.batched {
		c.schedulePart(p)
		return
	}
	if !p.dirtySched {
		p.dirtySched = true
		c.dirtyParts++
	}
	c.armFlush()
}

// kickAll requests a pass over every partition.
func (c *Controller) kickAll() {
	if !c.batched {
		c.scheduleAll()
		return
	}
	for _, p := range c.parts {
		if !p.dirtySched {
			p.dirtySched = true
			c.dirtyParts++
		}
	}
	c.armFlush()
}

// kickSubmit requests a pass after a submission. In batched mode the
// partition is only marked dirty — no flush event is armed: the
// submitting driver calls Flush once the instant's submissions are
// all queued, which costs one pass and zero queue events per instant.
func (c *Controller) kickSubmit(p *partition) {
	if !c.batched {
		c.schedulePart(p)
		return
	}
	if !p.dirtySched {
		p.dirtySched = true
		c.dirtyParts++
	}
}

// Flush runs any deferred scheduling passes immediately. Batched-mode
// drivers must call it after queueing an instant's submissions; other
// deferred wakes (Cancel, drain) arm their own flush event and need no
// help.
func (c *Controller) Flush() { c.flushScheduling() }

func (c *Controller) armFlush() {
	if c.flushArmed {
		return
	}
	c.flushArmed = true
	c.sim.AtAction(c.sim.Now(), &c.flushAct, 0)
}

// flushScheduling runs the deferred passes, in configuration order so
// the outcome is independent of which partition went dirty first.
func (c *Controller) flushScheduling() {
	c.flushArmed = false
	if c.dirtyParts == 0 {
		return
	}
	for _, p := range c.parts {
		if p.dirtySched {
			p.dirtySched = false
			c.dirtyParts--
			c.schedulePart(p)
		}
	}
}

// Submit is sbatch: run the submit-plugin chain, validate, and queue.
// Array descriptions must go through SubmitArray.
func (c *Controller) Submit(desc JobDesc) (*Job, error) {
	c.descScratch = desc
	return c.submitTraced(&c.descScratch)
}

// SubmitDesc is Submit for hot pump loops: the description is read
// through the pointer and copied once into the controller's scratch
// slot instead of twice through the stack. The caller keeps ownership
// of *desc; it is never mutated or retained.
func (c *Controller) SubmitDesc(desc *JobDesc) (*Job, error) {
	c.descScratch = *desc
	return c.submitTraced(&c.descScratch)
}

// submitTraced wraps the submission in the root span of the decision
// trace: plugin spans nest under it and the assigned job id lands in
// its attributes, which is how `chronus trace <job>` finds the trace.
// The id the job is about to receive keys head sampling, so a sampled
// deployment keeps or drops each submission's trace as a whole.
func (c *Controller) submitTraced(desc *JobDesc) (*Job, error) {
	ctx, span := c.tracer.StartKeyed(context.Background(), spanSubmit, uint64(c.nextID))
	job, err := c.submit(ctx, desc)
	if span != nil {
		if job != nil {
			span.SetAttr(trace.AttrJobID, strconv.Itoa(job.ID))
		}
		if desc.Name != "" {
			span.SetAttr("job_name", desc.Name)
		}
	}
	span.End(err)
	return job, err
}

func (c *Controller) submit(ctx context.Context, desc *JobDesc) (*Job, error) {
	if desc.IsArray() {
		return nil, fmt.Errorf("slurm: array description submitted directly; use SubmitArray")
	}
	c.mSubmitted.Inc()
	plugins, err := c.activePlugins()
	if err != nil {
		return nil, err
	}
	var pluginTime time.Duration
	for _, p := range plugins {
		lat, err := p.JobSubmit(ctx, desc, desc.UserID)
		pluginTime += lat
		if err != nil {
			c.mRejected.Inc()
			return nil, fmt.Errorf("slurm: plugin %s rejected job: %w", p.Name(), err)
		}
		if pluginTime > c.conf.PluginBudget {
			c.mRejected.Inc()
			c.mOverruns.Inc()
			return nil, fmt.Errorf("slurm: plugin %s exceeded the submit budget (%v > %v)",
				p.Name(), pluginTime, c.conf.PluginBudget)
		}
	}
	if len(plugins) > 0 {
		c.mChainLatency.ObserveDuration(pluginTime)
		if s := trace.FromContext(ctx); s != nil {
			s.SetAttr("plugin_sim_latency", pluginTime.String())
		}
	}

	if desc.NumTasks <= 0 {
		desc.NumTasks = 1
	}
	if desc.ThreadsPerCPU <= 0 {
		desc.ThreadsPerCPU = 1
	}
	if desc.TimeLimit <= 0 {
		desc.TimeLimit = c.conf.DefaultTimeLimit
	}
	// Partition handling: fill the default, reject unknown names, cap
	// the time limit to the partition's MaxTime.
	if desc.Partition == "" {
		desc.Partition = c.conf.DefaultPartition().Name
	}
	// Small clusters (a lane is one partition, the reference specs two)
	// resolve the partition by scanning names — short string compares
	// beat hashing the name into the map on every submission.
	var part *partition
	if len(c.parts) <= 4 {
		for _, q := range c.parts {
			if q.name == desc.Partition {
				part = q
				break
			}
		}
	} else {
		part = c.partByName[desc.Partition]
	}
	if part == nil {
		return nil, fmt.Errorf("slurm: invalid partition specified: %s", desc.Partition)
	}
	if part.conf.MaxTime > 0 && desc.TimeLimit > part.conf.MaxTime {
		desc.TimeLimit = part.conf.MaxTime
	}
	if err := part.fits(desc); err != nil {
		return nil, err
	}
	for _, dep := range desc.AfterOK {
		if _, ok := c.jobState(dep); !ok {
			return nil, fmt.Errorf("slurm: dependency on unknown job %d", dep)
		}
	}

	job := c.newJob()
	job.ID = c.nextID
	job.Desc = *desc
	job.State = StatePending
	job.Reason = "Priority"
	job.SubmitTime = c.sim.Now()
	job.submitTick = c.sim.NowTick()
	job.part = part
	job.userSlot = c.slotFor(desc.UserID)
	if desc.Shape != nil {
		// Copy the shape into the job-owned buffer: the description's
		// pointer may be to a caller's stack scratch (the cluster
		// simulator reuses one per submission stream), and the job can
		// outlive it.
		job.shape = *desc.Shape
		job.Desc.Shape = &job.shape
	}
	c.nextID++
	idx := job.ID - 1
	if ci := idx >> jobChunkBits; ci == len(c.jobs) {
		//lint:ignore ecolint/zeroallocproof arena growth — one chunk per 8192 job ids, amortized to ~0 per submission
		c.jobs = append(c.jobs, make([]*Job, jobChunkSize))
	}
	c.jobs[idx>>jobChunkBits][idx&jobChunkMask] = job
	part.pending = append(part.pending, job)
	if len(desc.AfterOK) > 0 {
		c.depPending++
	}
	c.kickSubmit(part)
	return job, nil
}

// SubmitScript parses an sbatch script and submits it. Array requests
// expand into independent tasks; the first task is returned, as
// sbatch prints one job id for the whole array.
func (c *Controller) SubmitScript(script string) (*Job, error) {
	desc, err := ParseBatchScript(script)
	if err != nil {
		return nil, err
	}
	if desc.IsArray() {
		tasks, err := c.SubmitArray(desc)
		if err != nil {
			return nil, err
		}
		return tasks[0], nil
	}
	return c.Submit(desc)
}

// SubmitArray expands an --array request into independent tasks
// (name_[index]) and submits each through the normal path — plugins
// included, as Slurm invokes job_submit per array task.
func (c *Controller) SubmitArray(desc JobDesc) ([]*Job, error) {
	if !desc.IsArray() {
		return nil, fmt.Errorf("slurm: SubmitArray on a non-array description")
	}
	if n := desc.ArrayHi - desc.ArrayLo + 1; n > 10000 {
		return nil, fmt.Errorf("slurm: array of %d tasks exceeds MaxArraySize", n)
	}
	base := desc.Name
	var tasks []*Job
	for idx := desc.ArrayLo; idx <= desc.ArrayHi; idx++ {
		task := desc
		task.ArrayLo, task.ArrayHi = 0, 0
		task.ArrayIndex = idx
		if base != "" {
			task.Name = fmt.Sprintf("%s_%d", base, idx)
		}
		job, err := c.Submit(task)
		if err != nil {
			return tasks, fmt.Errorf("slurm: array task %d: %w", idx, err)
		}
		tasks = append(tasks, job)
	}
	return tasks, nil
}

// WaitForAll advances simulated time until every listed job is
// terminal.
func (c *Controller) WaitForAll(ids []int) error {
	for _, id := range ids {
		if _, err := c.WaitFor(id); err != nil {
			return err
		}
	}
	return nil
}

// fits checks the request against the partition's node capability
// classes (one entry per distinct node shape, so the common
// homogeneous pool checks one).
func (p *partition) fits(desc *JobDesc) error {
	for i := range p.classes {
		spec := &p.classes[i]
		if desc.NumTasks <= spec.Cores &&
			desc.ThreadsPerCPU <= spec.ThreadsPerCore &&
			desc.MemoryMB <= spec.RAMGB*1024 {
			return nil
		}
	}
	return fmt.Errorf("slurm: no node can satisfy %d tasks × %d threads × %d MB",
		desc.NumTasks, desc.ThreadsPerCPU, desc.MemoryMB)
}

func nodeSatisfies(n *nodeD, desc *JobDesc) bool {
	return desc.NumTasks <= n.spec.Cores &&
		desc.ThreadsPerCPU <= n.spec.ThreadsPerCore &&
		desc.MemoryMB <= n.spec.RAMGB*1024
}

// scheduleAll runs a scheduling pass over every partition in
// configuration order.
func (c *Controller) scheduleAll() {
	for _, p := range c.parts {
		c.schedulePart(p)
	}
}

// schedulePart places the partition's pending jobs onto idle nodes in
// policy order.
func (c *Controller) schedulePart(p *partition) {
	if len(p.pending) == 0 {
		return
	}
	if p.freeN == 0 && p.busy > 0 && !c.cosched {
		// Hot path at scale: every node busy, so nothing can start
		// before this partition's next job-end event, which reschedules
		// it. Tag fresh arrivals with the visible squeue reason and
		// skip the full pass. (With co-scheduling a busy node may still
		// accept a complementary secondary, so the pass must run.)
		for i := len(p.pending) - 1; i >= 0 && p.pending[i].Reason == "Priority"; i-- {
			p.pending[i].Reason = "Resources"
		}
		p.queueGauge.Set(float64(len(p.pending)))
		return
	}
	now := c.sim.Now()
	_, span := c.tracer.Start(context.Background(), spanSchedule)
	if span != nil {
		span.SetAttr("partition", p.name)
		span.SetAttr("pending", strconv.Itoa(len(p.pending)))
		//lint:ignore ecolint/zeroallocproof span-guarded instrumentation; with tracing off (the latency-bounded deployment) span is nil and this block never runs
		defer func() { span.End(nil) }()
	}
	if !p.fifo {
		if p.keyed != nil {
			// Key-cached ordering: compute each job's priority once per
			// pass, then sort on the cached keys — the policy's Priority
			// would otherwise be recomputed O(n log n) times per pass.
			p.orderKeyed(now, c.usage, c.usageBy)
		} else {
			p.policy.Order(p.pending, now, c.usage)
		}
	}
	remaining := p.pending[:0]
	for i, job := range p.pending {
		if p.freeN == 0 && !c.cosched {
			// Every node claimed mid-pass: nothing below can start, so
			// keep the tail queued wholesale instead of probing each
			// job — the pass cost stays bounded by placements made, not
			// by backlog depth. Deferred dependency/begin-time handling
			// happens when the next node frees.
			rest := p.pending[i:]
			for k := len(rest) - 1; k >= 0 && rest[k].Reason == "Priority"; k-- {
				rest[k].Reason = "Resources"
			}
			if len(remaining) == 0 {
				// Everything ahead of i started: the tail is already in
				// place, so slide the window forward instead of copying
				// the whole backlog down — under a deep queue draining
				// one node at a time, that copy is the pass's entire
				// cost. (Appends reallocate compactly once the drifted
				// backing array's cap runs out.)
				p.pending = rest
				p.queueGauge.Set(float64(len(p.pending)))
				return
			}
			remaining = append(remaining, rest...)
			break
		}
		if job.State != StatePending {
			continue
		}
		if len(job.Desc.AfterOK) > 0 {
			switch c.dependencyState(job) {
			case depFailed:
				job.State = StateCancelled
				job.Reason = "DependencyNeverSatisfied"
				job.EndTime = now
				c.finish(job)
				continue
			case depWaiting:
				job.Reason = "Dependency"
				remaining = append(remaining, job)
				continue
			}
		}
		if !job.Desc.BeginTime.IsZero() && job.Desc.BeginTime.After(now) {
			job.Reason = "BeginTime"
			// Wake this partition up when the job becomes eligible.
			// AtOrNow: the begin time can land exactly on the current
			// instant from a caller's perspective yet be "past" by the
			// time the pass runs.
			// The wake fires inside the event loop: pass directly.
			//lint:ignore ecolint/zeroallocproof begin-time deferral — only jobs submitted with a future BeginTime take this branch, never the steady-state backlog
			c.sim.AtOrNow(job.Desc.BeginTime, func() { c.schedulePart(p) })
			remaining = append(remaining, job)
			continue
		}
		if c.deferral && job.Desc.Deferrable {
			if hold, wake := c.deferHold(job, now); hold {
				job.Reason = reasonEnergyHold
				c.armDeferWake(p, wake)
				remaining = append(remaining, job)
				continue
			}
		}
		node := p.takeIdle(&job.Desc)
		if node == nil {
			if c.cosched && c.tryPair(p, job, now) {
				continue
			}
			job.Reason = "Resources"
			remaining = append(remaining, job)
			continue
		}
		if c.capActive && !c.placeWithinCap(job, node) {
			c.refreeNode(node)
			job.Reason = reasonPowerCap
			c.ptotals.CapDenials++
			c.mCapDenials.Inc()
			remaining = append(remaining, job)
			continue
		}
		if err := c.start(job, node); err != nil {
			job.State = StateFailed
			job.Reason = err.Error()
			job.EndTime = now
			c.finish(job)
		}
	}
	p.pending = remaining
	p.queueGauge.Set(float64(len(p.pending)))
}

// claimNode books a started job onto the node across every partition
// sharing it.
func (c *Controller) claimNode(n *nodeD, job *Job) {
	n.current = job
	job.node = n
	for _, p := range n.parts {
		p.busy++
		p.occGauge.Set(float64(p.busy) / float64(len(p.nodes)))
	}
}

// releaseNode frees a node at job end or cancellation and relists it
// in its partitions' free heaps.
func (c *Controller) releaseNode(n *nodeD) {
	if n.current != nil {
		n.current.node = nil
	}
	n.current = nil
	n.hwJob = nil
	for _, p := range n.parts {
		p.busy--
		p.occGauge.Set(float64(p.busy) / float64(len(p.nodes)))
	}
	c.refreeNode(n)
}

// refreeNode relists an idle node (claimed but never started, or just
// released) in its partitions' free bitmaps.
func (c *Controller) refreeNode(n *nodeD) {
	if n.drained || n.free || n.current != nil {
		return
	}
	listFree(n)
}

func (c *Controller) start(job *Job, node *nodeD) error {
	cfg := job.Desc.Config()
	var w Workload
	switch {
	case job.Desc.Shape != nil:
		// The pointer satisfies Workload (value receivers); using it
		// directly avoids boxing a Shape copy per start.
		w = job.Desc.Shape
	default:
		var ok bool
		if w, ok = c.workloads[job.Desc.BinaryPath]; !ok {
			w = c.fallback
		}
	}

	hwJob, err := node.hw.StartJob(cfg)
	if err != nil {
		c.refreeNode(node)
		return err
	}
	// Record the frequency the job actually runs at: a job without
	// --cpu-freq gets the governor's choice, resolved by slurmd.
	if job.Desc.MaxFreqKHz == 0 {
		job.Desc.MaxFreqKHz = hwJob.Config.FreqKHz
		job.Desc.MinFreqKHz = hwJob.Config.FreqKHz
	} else {
		// slurmd pins the userspace governor for --cpu-freq jobs, so
		// sysfs and telemetry reflect the pinned frequency.
		if err := node.pinFrequency(hwJob.Config.FreqKHz); err != nil {
			hwJob.End()
			c.refreeNode(node)
			return err
		}
	}
	duration, gflops := w.Plan(node.hw, hwJob.Config)
	now := c.sim.Now()

	// Deadline extension (§6.2.1): a job that cannot finish in time is
	// cancelled rather than run uselessly.
	if !job.Desc.Deadline.IsZero() && now.Add(duration).After(job.Desc.Deadline) {
		hwJob.End()
		node.unpinFrequency()
		c.refreeNode(node)
		job.State = StateCancelled
		job.Reason = "DeadlineUnsatisfiable"
		job.EndTime = now
		c.finish(job)
		return nil
	}

	timedOut := duration > job.Desc.TimeLimit
	if timedOut {
		duration = job.Desc.TimeLimit
	}

	job.State = StateRunning
	job.Reason = ""
	job.StartTime = now
	job.startTick = c.sim.NowTick()
	job.NodeName = node.name
	job.GFLOPS = gflops
	c.claimNode(node, job)
	node.hwJob = hwJob
	if c.epActive {
		// Charge the draw of the configuration the job actually runs in
		// (slurmd resolved the frequency above), so the partition draw
		// bookkeeping is self-consistent with what is returned at end.
		c.addDraw(job, node, node.pm.PlacementDeltaW(hwJob.Config))
	}
	if c.tracer != nil && c.tracer.SampleKey(uint64(job.ID)) {
		//lint:ignore ecolint/zeroallocproof sampled start event — allocation gated on SampleKey head sampling, off the unsampled fast path
		c.tracer.Event(eventJobStart, map[string]string{
			trace.AttrJobID: strconv.Itoa(job.ID),
			"node":          node.name,
			"cores":         strconv.Itoa(hwJob.Config.Cores),
			"freq_khz":      strconv.Itoa(hwJob.Config.FreqKHz),
			"threads":       strconv.Itoa(hwJob.Config.ThreadsPerCore),
		})
	}

	job.sys0, job.cpu0 = node.hw.EnergyJ()
	job.timedOut = timedOut
	c.sim.AfterAction(duration, &c.compAct, uint64(job.ID))
	return nil
}

// completeJob is the completion event for a running job, fired through
// the controller's pre-allocated Action. The event is uncancellable,
// so it re-validates: a job cancelled (and possibly retired or even
// recycled) meanwhile no longer matches a running arena entry and the
// stale event is dropped.
func (c *Controller) completeJob(id int) {
	job := c.jobByID(id)
	if job == nil || job.ID != id || job.State != StateRunning || job.node == nil {
		return // cancelled meanwhile
	}
	node := job.node
	if job.coSecondary {
		c.completeSecondary(job, node)
		return
	}
	node.hwJob.End()
	node.unpinFrequency()
	sys1, cpu1 := node.hw.EnergyJ()
	job.SystemJ = sys1 - job.sys0
	job.CPUJ = cpu1 - job.cpu0
	job.EndTime = c.sim.Now()
	job.endTick = c.sim.NowTick()
	if job.timedOut {
		job.State = StateFailed
		job.Reason = "TimeLimit"
	} else {
		job.State = StateCompleted
	}
	if c.epActive {
		c.dropDraw(job, node)
	}
	if co := node.coJob; co != nil {
		// A co-scheduled secondary is still running: promote it to the
		// node's occupant instead of freeing the node. The hw job ended
		// with the primary; the secondary finishes on estimates.
		node.coJob = nil
		node.current = co
		node.hwJob = nil
		job.node = nil
	} else {
		c.releaseNode(node)
	}
	c.finish(job)
	// Completion already runs inside the event loop, so schedule the
	// freed node's partitions directly instead of arming a same-instant
	// flush event — one fewer queue round-trip per job.
	if c.depPending > 0 {
		// A queued dependent may live in any partition; wake them
		// all so cross-partition dependency chains resolve.
		c.scheduleAll()
	} else {
		for _, p := range node.parts {
			c.schedulePart(p)
		}
	}
}

// slotFor returns the user's dense usage slot, assigning one on first
// sight.
func (c *Controller) slotFor(uid uint32) int32 {
	if s, ok := c.userSlots[uid]; ok {
		return s
	}
	s := int32(len(c.usageBy))
	c.userSlots[uid] = s
	c.usageBy = append(c.usageBy, 0)
	return s
}

// addUsage credits consumed CPU-seconds to both fair-share stores.
func (c *Controller) addUsage(uid uint32, slot int32, delta float64) {
	c.usage[uid] += delta
	c.usageBy[slot] += delta
}

func (c *Controller) finish(job *Job) {
	if job.startTick != 0 && job.endTick != 0 {
		delta := float64(job.Desc.NumTasks) * time.Duration(job.endTick-job.startTick).Seconds()
		c.addUsage(job.Desc.UserID, job.userSlot, delta)
		if c.usageSink != nil {
			c.usageSink(job.Desc.UserID, delta)
		}
	} else if !job.StartTime.IsZero() && !job.EndTime.IsZero() {
		delta := float64(job.Desc.NumTasks) * job.EndTime.Sub(job.StartTime).Seconds()
		c.addUsage(job.Desc.UserID, job.userSlot, delta)
		if c.usageSink != nil {
			c.usageSink(job.Desc.UserID, delta)
		}
	}
	switch job.State {
	case StateCompleted:
		c.mCompleted.Inc()
	case StateFailed:
		c.mFailed.Inc()
	case StateCancelled:
		c.mCancelled.Inc()
	}
	if p := job.part; p != nil {
		if job.State == StateCompleted {
			p.doneCount.Inc()
		}
		if job.SystemJ > 0 {
			p.energyGauge.Add(job.SystemJ / 1000)
		}
	}
	// Degraded outcomes (failures, cancellations) are always journaled;
	// only the healthy completion event is subject to head sampling.
	if c.tracer != nil && (job.State != StateCompleted || c.tracer.SampleKey(uint64(job.ID))) {
		//lint:ignore ecolint/zeroallocproof sampled/degraded end event — allocation gated on the tracer branch, off the unsampled fast path
		attrs := map[string]string{
			trace.AttrJobID: strconv.Itoa(job.ID),
			"state":         string(job.State),
		}
		if job.Reason != "" {
			attrs["reason"] = job.Reason
		}
		if job.SystemJ > 0 {
			//lint:ignore ecolint/zeroallocproof sampled end-event formatting, same tracer gate as the attrs map above
			attrs["system_kj"] = fmt.Sprintf("%.3f", job.SystemJ/1000)
			//lint:ignore ecolint/zeroallocproof sampled end-event formatting, same tracer gate as the attrs map above
			attrs["cpu_kj"] = fmt.Sprintf("%.3f", job.CPUJ/1000)
		}
		c.tracer.Event(eventJobEnd, attrs)
	}
	c.acct.record(job)
	for _, fn := range c.onDone {
		fn(job)
	}
	if len(job.Desc.AfterOK) > 0 {
		c.depPending--
	}
	if c.aggregate {
		c.retire(job)
	}
}

// retire drops a terminal job from the arena, keeping only its final
// state code for dependency resolution — the memory bound that lets a
// run absorb millions of submissions. The record itself goes back to
// the pool for the next submission: in aggregate mode nothing retains
// a job past its completion hooks.
func (c *Controller) retire(job *Job) {
	id := job.ID
	if id >= 1 && id < c.nextID {
		idx := id - 1
		c.jobs[idx>>jobChunkBits][idx&jobChunkMask] = nil
	}
	for len(c.retired) <= id {
		c.retired = append(c.retired, retiredNone)
	}
	c.retired[id] = retireCode(job.State)
	if job.node == nil {
		c.jobPool = append(c.jobPool, job)
	}
}

// jobState resolves a job's current state by id, consulting retired
// jobs as well as live ones.
func (c *Controller) jobState(id int) (JobState, bool) {
	if j := c.jobByID(id); j != nil {
		return j.State, true
	}
	if id > 0 && id < len(c.retired) && c.retired[id] != retiredNone {
		return retiredState(c.retired[id]), true
	}
	return "", false
}

// Cancel is scancel: terminate a pending or running job.
func (c *Controller) Cancel(id int) error {
	job := c.jobByID(id)
	if job == nil {
		return fmt.Errorf("slurm: no job %d", id)
	}
	if job.State.Terminal() {
		return fmt.Errorf("slurm: job %d already %s", id, job.State)
	}
	freed := (*nodeD)(nil)
	var kickParts []*partition
	if job.State == StateRunning && job.node != nil {
		n := job.node
		if c.epActive {
			c.dropDraw(job, n)
		}
		switch {
		case job.coSecondary && n.coJob == job:
			// Co-scheduled secondary with its primary still running:
			// vacate the slot; the node stays claimed by the primary.
			n.coJob = nil
			job.node = nil
			kickParts = n.parts
		case job.coSecondary:
			// Promoted secondary (the primary already ended, taking the
			// hw job with it): the node frees without an hw job to end.
			freed = n
			c.releaseNode(n)
		case n.coJob != nil:
			// Primary with a live secondary: end the hw job and promote
			// the secondary instead of freeing the node.
			n.hwJob.End()
			n.unpinFrequency()
			co := n.coJob
			n.coJob = nil
			n.current = co
			n.hwJob = nil
			job.node = nil
			kickParts = n.parts
		default:
			freed = n
			n.hwJob.End()
			n.unpinFrequency()
			c.releaseNode(n)
		}
	}
	job.State = StateCancelled
	job.Reason = "Cancelled by user"
	job.EndTime = c.sim.Now()
	c.finish(job)
	switch {
	case c.depPending > 0:
		c.kickAll()
	case freed != nil:
		for _, p := range freed.parts {
			c.kick(p)
		}
	case kickParts != nil:
		// No node freed, but a co-scheduling slot (and power headroom)
		// opened on the node's partitions.
		for _, p := range kickParts {
			c.kick(p)
		}
	case job.part != nil:
		c.kick(job.part)
	}
	return nil
}

// Job returns a job by id. Retired jobs (aggregate accounting) are
// not returned.
func (c *Controller) Job(id int) (*Job, bool) {
	j := c.jobByID(id)
	return j, j != nil
}

// Squeue lists pending and running jobs, pending first, by id.
func (c *Controller) Squeue() []*Job {
	var out []*Job
	for _, chunk := range c.jobs {
		for _, j := range chunk {
			if j != nil && !j.State.Terminal() {
				out = append(out, j)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].State != out[b].State {
			return out[a].State == StatePending
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Sinfo reports node states.
func (c *Controller) Sinfo() []NodeInfo {
	out := make([]NodeInfo, len(c.nodes))
	for i, n := range c.nodes {
		info := NodeInfo{Name: n.name, State: "idle", Cores: n.hw.Spec().Cores}
		switch {
		case n.current != nil && n.drained:
			info.State = "drng" // draining: finishing its job, accepting nothing
			info.JobID = n.current.ID
		case n.current != nil:
			info.State = "alloc"
			info.JobID = n.current.ID
		case n.drained:
			info.State = "drain"
		}
		out[i] = info
	}
	return out
}

// DrainNode marks a node unavailable for new jobs (the `scontrol
// update nodename=X state=drain` admin operation). A running job
// finishes; nothing new is placed.
func (c *Controller) DrainNode(name string) error {
	return c.setDrain(name, true)
}

// ResumeNode returns a drained node to service.
func (c *Controller) ResumeNode(name string) error {
	if err := c.setDrain(name, false); err != nil {
		return err
	}
	c.scheduleAll()
	return nil
}

func (c *Controller) setDrain(name string, drained bool) error {
	for _, n := range c.nodes {
		if n.name != name {
			continue
		}
		n.drained = drained
		if drained {
			// Idle drained nodes leave the free pool; busy ones stay
			// claimed and simply never return to it while drained.
			if n.free {
				unlistFree(n)
			}
		} else {
			c.refreeNode(n)
		}
		return nil
	}
	return fmt.Errorf("slurm: no node %q", name)
}

// WaitFor advances simulated time until the job is terminal. It fails
// if the simulation runs out of events first (a scheduling deadlock).
// In aggregate mode the returned record may be a synthesized snapshot
// (id + final state): the live record is recycled at retirement.
func (c *Controller) WaitFor(id int) (*Job, error) {
	if st, ok := c.jobState(id); ok && st.Terminal() {
		if j := c.jobByID(id); j != nil {
			return j, nil
		}
		return &Job{ID: id, State: st}, nil
	}
	job := c.jobByID(id)
	if job == nil {
		return nil, fmt.Errorf("slurm: no job %d", id)
	}
	// The record can be retired and recycled for a different job while
	// we step; guard on the identity, not just the state.
	for job.ID == id && !job.State.Terminal() {
		if !c.sim.Step() {
			return job, fmt.Errorf("slurm: job %d stuck in %s with no pending events", id, job.State)
		}
	}
	if job.ID != id {
		st, _ := c.jobState(id)
		return &Job{ID: id, State: st}, nil
	}
	return job, nil
}

// Srun submits a job and waits for it — the paper's interactive path.
func (c *Controller) Srun(desc JobDesc) (*Job, error) {
	job, err := c.Submit(desc)
	if err != nil {
		return nil, err
	}
	return c.WaitFor(job.ID)
}

// Nodes exposes the hardware for telemetry attachment.
func (c *Controller) Nodes() []*hw.Node {
	out := make([]*hw.Node, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.hw
	}
	return out
}

// NodeByName returns a node's hardware by name.
func (c *Controller) NodeByName(name string) (*hw.Node, bool) {
	for _, n := range c.nodes {
		if n.name == name {
			return n.hw, true
		}
	}
	return nil, false
}

// Dependency resolution states.
type depState int

const (
	depReady depState = iota
	depWaiting
	depFailed
)

// dependencyState inspects a job's afterok list.
func (c *Controller) dependencyState(job *Job) depState {
	state := depReady
	for _, dep := range job.Desc.AfterOK {
		st, ok := c.jobState(dep)
		if !ok {
			return depFailed
		}
		switch {
		case st == StateCompleted:
			// satisfied
		case st.Terminal():
			return depFailed
		default:
			state = depWaiting
		}
	}
	return state
}
