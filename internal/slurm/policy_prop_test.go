package slurm

import (
	"fmt"
	"math"
	"testing"
	"time"

	"ecosched/internal/hw"
	"ecosched/internal/simclock"
	"ecosched/internal/workload"
)

// Property-based suite for the cluster energy policies: random seeded
// workloads against random budgets, with the policy invariants checked
// at every simulated instant (after each event fires and after each
// submission). The invariants:
//
//  1. A capped partition's modelled draw never exceeds its cap — not
//     at any step, and not in the recorded peak.
//  2. The incrementally-maintained draw always equals the draw
//     recomputed from scratch off the running jobs (no leaks across
//     start/finish/cancel/co-schedule paths).
//  3. A node never hosts a co-scheduled pair where either side is
//     Exclusive, profiles match, or task counts overflow the cores.
//  4. Under deferral with guaranteed capacity, no deferrable job ever
//     finishes past its deadline: the hold must release in time.
//
// The suite runs the full grid under -race via `make chaos`
// (propSeeds × the policy-config table ≥ the twenty-seed floor the
// acceptance criteria set).
const propSeeds = 24

// propConfig is one policy configuration of the property grid. Caps
// are sized per node on top of the idle floor, so any node count keeps
// the budget above the attach-time floor check; headroomW is the
// per-node job allowance (≥ one max-frequency full-width placement
// keeps progress guaranteed cluster-wide).
type propConfig struct {
	name      string
	headroomW float64 // per-node watts above idle; 0 = uncapped
	mode      string
	cosched   bool
	deferral  bool
}

func propConfigs() []propConfig {
	_, deltas := testLadderWatts()
	maxDelta := deltas[len(deltas)-1]
	return []propConfig{
		{name: "cap-wait", headroomW: 1.2 * maxDelta, mode: CapModeWait},
		{name: "cap-freqcap", headroomW: 1.2 * maxDelta, mode: CapModeFreqCap},
		{name: "cosched", cosched: true},
		{name: "deferral", deferral: true},
		{name: "all", headroomW: 1.5 * maxDelta, mode: CapModeFreqCap, cosched: true, deferral: true},
	}
}

// propJob is one randomly drawn submission.
type propJob struct {
	at   time.Duration // offset from the sim start
	desc JobDesc
}

// drawWorkload samples a random workload: a mix of compute/memory
// profiled sleep and fixed-work jobs, random widths, some exclusive,
// some deferrable with deadlines, some frequency-pinned.
func drawWorkload(rng *simclock.RNG, n int, start time.Time) []propJob {
	ladder := hw.DefaultSpec().FrequenciesKHz
	jobs := make([]propJob, n)
	var at time.Duration
	for i := range jobs {
		at += time.Duration(rng.Intn(300)) * time.Second
		d := time.Duration(60+rng.Intn(1740)) * time.Second
		desc := JobDesc{
			Name:      fmt.Sprintf("prop-%d", i),
			NumTasks:  1 + rng.Intn(32),
			TimeLimit: 2 * d,
		}
		shape := workload.Sleep("prop-sleep", d)
		switch rng.Intn(3) {
		case 0:
			shape.Profile = workload.ProfileCompute
		case 1:
			shape.Profile = workload.ProfileMemory
		}
		if shape.Profile == workload.ProfileCompute && rng.Intn(4) == 0 {
			// A minority of compute jobs carry a FLOP budget instead, so
			// the frequency pin actually changes runtimes.
			shape = workload.FixedWork("prop-work", 500+1000*rng.Float64())
			shape.Profile = workload.ProfileCompute
			desc.TimeLimit = 4 * time.Hour
		}
		desc.Shape = &shape
		if rng.Intn(5) == 0 {
			desc.Exclusive = true
		}
		if rng.Intn(8) == 0 {
			f := ladder[rng.Intn(len(ladder))]
			desc.MaxFreqKHz, desc.MinFreqKHz = f, f
		}
		if rng.Intn(3) == 0 {
			desc.Deferrable = true
			slack := time.Duration(1+rng.Intn(4)) * time.Hour
			desc.Deadline = start.Add(at + desc.TimeLimit + slack)
		}
		jobs[i].at = at
		jobs[i].desc = desc
	}
	return jobs
}

// checkPolicyInvariants asserts invariants 1–3 over the controller's
// current state.
func checkPolicyInvariants(t *testing.T, c *Controller) {
	t.Helper()
	for _, p := range c.parts {
		if p.capW > 0 {
			if p.drawW > p.capW*(1+capSlack) {
				t.Fatalf("partition %q draw %.3f W exceeds cap %.3f W at %v",
					p.name, p.drawW, p.capW, c.sim.Now())
			}
			if p.peakDrawW > p.capW*(1+capSlack) {
				t.Fatalf("partition %q peak %.3f W exceeds cap %.3f W", p.name, p.peakDrawW, p.capW)
			}
		}
		// Recompute the draw from scratch: idle floor plus every running
		// job's attributed delta.
		want := 0.0
		for _, n := range p.nodes {
			want += n.idleDrawW
			if n.current != nil {
				want += n.current.drawDeltaW
			}
			if n.coJob != nil && n.coJob != n.current {
				want += n.coJob.drawDeltaW
			}
		}
		if math.Abs(want-p.drawW) > 1e-6 {
			t.Fatalf("partition %q draw drifted: incremental %.9f W, recomputed %.9f W at %v",
				p.name, p.drawW, want, c.sim.Now())
		}
	}
	for _, n := range c.nodes {
		co := n.coJob
		if co == nil {
			continue
		}
		pri := n.current
		if pri == nil || pri == co {
			// The primary ended and promoted the secondary; the pair is
			// dissolved, nothing left to check.
			continue
		}
		if pri.Desc.Exclusive || co.Desc.Exclusive {
			t.Fatalf("node %q co-schedules an exclusive job (primary %d, secondary %d)",
				n.name, pri.ID, co.ID)
		}
		pp, cp := pri.shapeProfile(), co.shapeProfile()
		if pp == "" || cp == "" || pp == cp {
			t.Fatalf("node %q pairs profiles %q + %q", n.name, pp, cp)
		}
		if pri.Desc.NumTasks+co.Desc.NumTasks > n.spec.Cores {
			t.Fatalf("node %q oversubscribed: %d + %d tasks on %d cores",
				n.name, pri.Desc.NumTasks, co.Desc.NumTasks, n.spec.Cores)
		}
	}
}

// TestPolicyInvariantsRandomized is the main property: for every
// policy configuration and every seed, a random workload against a
// random budget never breaks the cap, the draw ledger, or the pairing
// rules — at any simulated instant.
func TestPolicyInvariantsRandomized(t *testing.T) {
	for _, cfg := range propConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for seed := uint64(1); seed <= propSeeds; seed++ {
				runPolicyProperty(t, cfg, seed)
			}
		})
	}
}

func runPolicyProperty(t *testing.T, cfg propConfig, seed uint64) {
	t.Helper()
	rng := simclock.NewRNG(seed)
	idle, _ := testLadderWatts()
	nodes := 3 + rng.Intn(4)
	sim := simclock.New()

	var pols []SchedPolicy
	if cfg.headroomW > 0 {
		// Random budget: at least one max-width placement per the config's
		// headroom floor, up to roomy. Always above the idle-floor attach
		// check by construction.
		capW := float64(nodes) * (idle + cfg.headroomW*(1+rng.Float64()))
		pols = append(pols, &PowerCapPolicy{ClusterCapW: capW, Mode: cfg.mode})
	}
	if cfg.cosched {
		pols = append(pols, &CoSchedulePolicy{InterferencePenalty: 1 + rng.Float64()/2})
	}
	if cfg.deferral {
		pols = append(pols, &DeferralPolicy{
			Signal:    propSignal(sim.Now(), seed),
			Threshold: 0.5,
			MaxDefer:  time.Duration(1+rng.Intn(3)) * time.Hour,
			Check:     time.Duration(5+rng.Intn(10)) * time.Minute,
		})
	}
	c, err := tryPolicyCluster(sim, nodes, pols...)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	start := sim.Now()
	jobs := drawWorkload(rng, 30+rng.Intn(30), start)
	for _, pj := range jobs {
		for at := start.Add(pj.at); sim.Now().Before(at); {
			if !sim.Step() {
				sim.RunUntil(at)
				break
			}
			checkPolicyInvariants(t, c)
		}
		if _, err := c.Submit(pj.desc); err != nil {
			t.Fatalf("seed %d: submit: %v", seed, err)
		}
		checkPolicyInvariants(t, c)
	}
	for sim.Step() {
		checkPolicyInvariants(t, c)
	}

	tot := c.PolicyTotals()
	if tot.CapViolations != 0 {
		t.Fatalf("seed %d (%s): %d cap violations", seed, cfg.name, tot.CapViolations)
	}
	// Everything drained: the draw is back at the idle floor and no job
	// is left pending (MaxDefer bounds every hold, caps free up as jobs
	// end, so the queue must empty).
	for _, p := range c.parts {
		if len(p.pending) != 0 {
			t.Fatalf("seed %d (%s): %d jobs stranded in %q", seed, cfg.name, len(p.pending), p.name)
		}
		if want := float64(nodes) * idle; math.Abs(p.drawW-want) > 1e-6 {
			t.Fatalf("seed %d (%s): residual draw %.9f W, want idle floor %.9f W",
				seed, cfg.name, p.drawW, want)
		}
	}
}

// propSignal is a deterministic square-wave price signal: alternating
// one-hour expensive/cheap windows, phase-shifted by the seed.
func propSignal(start time.Time, seed uint64) DeferralSignal {
	phase := time.Duration(seed%7) * 10 * time.Minute
	return func(t time.Time) float64 {
		h := int(t.Add(phase).Sub(start) / time.Hour)
		if h%2 == 0 {
			return 1.0
		}
		return 0.1
	}
}

// TestDeferralNeverStarvesPastDeadline is invariant 4: with capacity
// guaranteed (one node per job, sleep runtimes within the time limit),
// a deferrable job with a deadline always completes by it — across
// random seeds, signals, and deferral parameters.
func TestDeferralNeverStarvesPastDeadline(t *testing.T) {
	for seed := uint64(1); seed <= propSeeds; seed++ {
		rng := simclock.NewRNG(seed + 1000)
		sim := simclock.New()
		const nJobs = 12
		c, err := tryPolicyCluster(sim, nJobs, &DeferralPolicy{
			Signal:    propSignal(sim.Now(), seed),
			Threshold: 0.5,
			MaxDefer:  time.Duration(1+rng.Intn(6)) * time.Hour,
			Check:     time.Duration(5+rng.Intn(25)) * time.Minute,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		start := sim.Now()
		var submitted []*Job
		var at time.Duration
		for i := 0; i < nJobs; i++ {
			at += time.Duration(rng.Intn(1800)) * time.Second
			sim.RunUntil(start.Add(at))
			d := time.Duration(300+rng.Intn(1500)) * time.Second
			desc := JobDesc{
				Name:       fmt.Sprintf("dl-%d", i),
				NumTasks:   1 + rng.Intn(8),
				TimeLimit:  d + time.Duration(rng.Intn(600))*time.Second,
				Deferrable: true,
				Shape:      &workload.Shape{Kind: workload.ShapeSleep, Label: "dl", Duration: d},
			}
			// Deadline with real slack beyond the worst-case runtime, but
			// tight enough that an unbounded hold would blow through it.
			desc.Deadline = sim.Now().Add(desc.TimeLimit + time.Duration(10+rng.Intn(110))*time.Minute)
			j, err := c.Submit(desc)
			if err != nil {
				t.Fatalf("seed %d: submit: %v", seed, err)
			}
			submitted = append(submitted, j)
		}
		sim.Run()

		for _, j := range submitted {
			if j.State != StateCompleted {
				t.Fatalf("seed %d: job %d ended %s (%s)", seed, j.ID, j.State, j.Reason)
			}
			if j.EndTime.After(j.Desc.Deadline) {
				t.Fatalf("seed %d: job %d finished %v, past its deadline %v (deferred past the release bound)",
					seed, j.ID, j.EndTime, j.Desc.Deadline)
			}
		}
	}
}
