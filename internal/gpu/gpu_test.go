package gpu

import (
	"testing"
	"testing/quick"
)

func TestDefaultIsMemoryBoundAtMaxClocks(t *testing.T) {
	m := Default()
	max := m.MaxConfig()
	compute := m.CorePerfPerMHz * float64(max.CoreMHz)
	memory := m.MemPerfPerMHz * float64(max.MemMHz)
	if memory >= compute {
		t.Fatalf("workload not memory-bound at max clocks: mem %v vs compute %v", memory, compute)
	}
}

func TestPerfMonotoneInClocks(t *testing.T) {
	m := Default()
	prev := 0.0
	for _, core := range m.CoreClocksMHz {
		p := m.Perf(Config{core, 3000})
		if p < prev {
			t.Fatalf("perf decreased at %d MHz", core)
		}
		prev = p
	}
	prev = 0.0
	for _, mem := range m.MemClocksMHz {
		p := m.Perf(Config{1400, mem})
		if p < prev {
			t.Fatalf("perf decreased at mem %d MHz", mem)
		}
		prev = p
	}
}

func TestPowerMonotoneInClocks(t *testing.T) {
	m := Default()
	if err := quick.Check(func(a, b uint8) bool {
		i := int(a) % len(m.CoreClocksMHz)
		j := int(b) % len(m.CoreClocksMHz)
		if m.CoreClocksMHz[i] < m.CoreClocksMHz[j] {
			i, j = j, i
		}
		return m.PowerW(Config{m.CoreClocksMHz[i], 3000}) >= m.PowerW(Config{m.CoreClocksMHz[j], 3000})
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// The headline: ~28 % energy saving at ≤1 % performance loss.
func TestTuneReproducesCitedResult(t *testing.T) {
	m := Default()
	res, err := m.TuneWithinPerfLoss(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerfLossPct > 1.001 {
		t.Fatalf("perf loss %.2f%% exceeds the 1%% bound", res.PerfLossPct)
	}
	if res.EnergySavingPct < 24 || res.EnergySavingPct > 32 {
		t.Fatalf("energy saving %.1f%%, cited result is ~28%%", res.EnergySavingPct)
	}
	if res.Best.CoreMHz >= res.Baseline.CoreMHz {
		t.Fatal("tuner did not reduce the core clock")
	}
}

func TestTuneZeroLossBound(t *testing.T) {
	m := Default()
	res, err := m.TuneWithinPerfLoss(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerfLossPct > 1e-9 {
		t.Fatalf("zero bound violated: %v%%", res.PerfLossPct)
	}
	// With the memory roof binding and residual clock sensitivity
	// everywhere below max, a strict zero-loss bound admits only the
	// baseline: the cited saving *requires* giving up ~1 %.
	if res.Best != res.Baseline || res.EnergySavingPct != 0 {
		t.Fatalf("zero-loss bound found %+v (%.1f%%), expected the baseline", res.Best, res.EnergySavingPct)
	}
}

func TestTuneBoundValidation(t *testing.T) {
	m := Default()
	if _, err := m.TuneWithinPerfLoss(-0.1); err == nil {
		t.Fatal("negative bound accepted")
	}
	if _, err := m.TuneWithinPerfLoss(1); err == nil {
		t.Fatal("bound of 1 accepted")
	}
}

func TestLargerBoundNeverWorse(t *testing.T) {
	m := Default()
	prev := -1.0
	for _, bound := range []float64{0, 0.01, 0.02, 0.05, 0.10} {
		res, err := m.TuneWithinPerfLoss(bound)
		if err != nil {
			t.Fatal(err)
		}
		if res.EnergySavingPct < prev {
			t.Fatalf("saving decreased as the bound relaxed (%.2f%% at %.2f)", res.EnergySavingPct, bound)
		}
		prev = res.EnergySavingPct
	}
}

func TestSweepCoversGrid(t *testing.T) {
	m := Default()
	sweep := m.Sweep()
	if len(sweep) != len(m.CoreClocksMHz)*len(m.MemClocksMHz) {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	for _, pt := range sweep {
		if pt.EPW <= 0 || pt.PowerW <= m.IdleW {
			t.Fatalf("bad sweep point %+v", pt)
		}
	}
}
