// Package gpu implements the paper's §6.2.2 future-work extension:
// tuning GPU core and memory clocks for energy efficiency. The cited
// result (Abe et al., "Power and performance analysis of
// GPU-accelerated systems") found ~28 % energy savings for ~1 %
// performance loss; this package models a memory-bound GPU workload
// whose clock sweep reproduces that trade-off, and exposes the
// constrained search the plugin would run: minimum energy subject to a
// performance-loss bound.
package gpu

import (
	"fmt"
	"math"
)

// Model is a simulated GPU with DVFS on the core and memory clocks.
type Model struct {
	Name string
	// Clock ladders in MHz, ascending.
	CoreClocksMHz []int
	MemClocksMHz  []int
	// Throughput: perf = min(CorePerf·core, MemPerf·mem), with a mild
	// residual clock sensitivity in the memory-bound region.
	CorePerfPerMHz float64
	MemPerfPerMHz  float64
	ClockSlack     float64 // fractional perf lost per full clock-range drop in the memory-bound region
	// Power model: idle + core·(clock/max)^CoreExp·CoreMaxW + mem share.
	IdleW    float64
	CoreMaxW float64
	CoreExp  float64
	MemMaxW  float64
}

// Default returns a model calibrated so the energy-optimal
// configuration under a 1 % performance-loss bound saves ~28 % energy
// versus maximum clocks — the cited result.
func Default() *Model {
	return &Model{
		Name:           "sim-gpu",
		CoreClocksMHz:  ladder(500, 1400, 50),
		MemClocksMHz:   ladder(1500, 3000, 250),
		CorePerfPerMHz: 0.9,
		MemPerfPerMHz:  0.33,
		ClockSlack:     0.05,
		IdleW:          40,
		CoreMaxW:       165,
		CoreExp:        2.6,
		MemMaxW:        30,
	}
}

func ladder(lo, hi, step int) []int {
	var out []int
	for c := lo; c <= hi; c += step {
		out = append(out, c)
	}
	return out
}

// Config is one GPU DVFS operating point.
type Config struct {
	CoreMHz int
	MemMHz  int
}

// MaxConfig returns the default operating point (everything at max).
func (m *Model) MaxConfig() Config {
	return Config{
		CoreMHz: m.CoreClocksMHz[len(m.CoreClocksMHz)-1],
		MemMHz:  m.MemClocksMHz[len(m.MemClocksMHz)-1],
	}
}

// Perf returns relative throughput (arbitrary units) at a config.
// Achievable memory-roof throughput retains a residual sensitivity to
// the core clock (issue rate, latency hiding), so lowering the clock
// below max always costs a little even when memory-bound.
func (m *Model) Perf(c Config) float64 {
	compute := m.CorePerfPerMHz * float64(c.CoreMHz)
	maxCore := float64(m.CoreClocksMHz[len(m.CoreClocksMHz)-1])
	clockFactor := 1 - m.ClockSlack*(maxCore-float64(c.CoreMHz))/maxCore
	memory := m.MemPerfPerMHz * float64(c.MemMHz) * clockFactor
	return math.Min(compute, memory)
}

// PowerW returns board power at a config under load.
func (m *Model) PowerW(c Config) float64 {
	maxCore := float64(m.CoreClocksMHz[len(m.CoreClocksMHz)-1])
	maxMem := float64(m.MemClocksMHz[len(m.MemClocksMHz)-1])
	core := m.CoreMaxW * math.Pow(float64(c.CoreMHz)/maxCore, m.CoreExp)
	mem := m.MemMaxW * float64(c.MemMHz) / maxMem
	return m.IdleW + core + mem
}

// EnergyPerWork returns joules per unit of work — the quantity the
// tuner minimises.
func (m *Model) EnergyPerWork(c Config) float64 {
	p := m.Perf(c)
	if p <= 0 {
		return math.Inf(1)
	}
	return m.PowerW(c) / p
}

// Result summarises a tuning run.
type Result struct {
	Best            Config
	Baseline        Config
	EnergySavingPct float64 // vs. baseline, per unit of work
	PerfLossPct     float64 // vs. baseline
}

// TuneWithinPerfLoss finds the configuration minimising energy per
// work subject to a relative performance-loss bound against maximum
// clocks — "tune the clock rate and memory frequency to get better
// energy efficiency ... 28 % energy for 1 % performance loss".
func (m *Model) TuneWithinPerfLoss(maxLossFrac float64) (Result, error) {
	if maxLossFrac < 0 || maxLossFrac >= 1 {
		return Result{}, fmt.Errorf("gpu: performance-loss bound %v out of [0,1)", maxLossFrac)
	}
	base := m.MaxConfig()
	basePerf := m.Perf(base)
	baseEnergy := m.EnergyPerWork(base)
	best := base
	bestEnergy := baseEnergy
	for _, core := range m.CoreClocksMHz {
		for _, mem := range m.MemClocksMHz {
			c := Config{core, mem}
			if m.Perf(c) < basePerf*(1-maxLossFrac) {
				continue
			}
			if e := m.EnergyPerWork(c); e < bestEnergy {
				best, bestEnergy = c, e
			}
		}
	}
	return Result{
		Best:            best,
		Baseline:        base,
		EnergySavingPct: 100 * (1 - bestEnergy/baseEnergy),
		PerfLossPct:     100 * (1 - m.Perf(best)/basePerf),
	}, nil
}

// Sweep returns energy-per-work for every operating point, for the
// figure-style output of the GPU example.
func (m *Model) Sweep() []struct {
	Config Config
	Perf   float64
	PowerW float64
	EPW    float64
} {
	var out []struct {
		Config Config
		Perf   float64
		PowerW float64
		EPW    float64
	}
	for _, core := range m.CoreClocksMHz {
		for _, mem := range m.MemClocksMHz {
			c := Config{core, mem}
			out = append(out, struct {
				Config Config
				Perf   float64
				PowerW float64
				EPW    float64
			}{c, m.Perf(c), m.PowerW(c), m.EnergyPerWork(c)})
		}
	}
	return out
}
