// Package paperdata embeds the measured results published in the paper
// ("Automatic Energy-Efficient Job Scheduling in HPC: A Novel Slurm
// Plugin Approach", Springborg, 2023): the full GFLOPS-per-watt sweep
// of Tables 4–6, the top-13 Table 1, the power/temperature aggregates
// of Table 2, the related-work comparison of Table 3 and the scalar
// anchors quoted in the text (Figure 1, Equation 1).
//
// The data serves two purposes: the hardware simulator's power and
// throughput constants are least-squares calibrated against it
// (internal/perfmodel), and the experiment harness compares regenerated
// tables against it to report paper-vs-measured agreement
// (EXPERIMENTS.md).
package paperdata

// SweepRow is one configuration point from Tables 4–6.
type SweepRow struct {
	Cores         int
	GHz           float64
	GFLOPSPerWatt float64
	HyperThread   bool
}

// Table1Row is one of the 13 best configurations from Table 1, with
// the paper's relative-efficiency and relative-performance columns
// (both relative to the standard Slurm configuration, 32 cores at
// 2.5 GHz).
type Table1Row struct {
	Cores          int
	GHz            float64
	HyperThread    bool
	GFLOPSPerWatt  float64
	RelEfficiency  float64 // "GFLOPS/watt %" column
	RelPerformance float64 // "Performance %" column
}

// RunAggregate is one row of Table 2: whole-run averages for a
// 20-minute HPCG job.
type RunAggregate struct {
	Name           string
	AvgSystemWatts float64
	AvgCPUWatts    float64
	SystemKJ       float64
	CPUKJ          float64
	AvgCPUTempC    float64
	RuntimeSeconds int
}

// Anchor scalars quoted in the paper's text.
const (
	// Fig1GFLOPS is the HPCG rating logged by Chronus in Figure 1 for
	// the standard configuration (32 cores, 2.5 GHz).
	Fig1GFLOPS = 9.34829

	// Equation 1: IPMI reported 258 W while the wattmeter on the two
	// PSUs read 129.7 + 143.7 W, a 5.96 % difference.
	Eq1IPMIWatts      = 258.0
	Eq1PSU1Watts      = 129.7
	Eq1PSU2Watts      = 143.7
	Eq1WattmeterWatts = Eq1PSU1Watts + Eq1PSU2Watts
	Eq1PercentDiff    = 5.96

	// Table 3 headline numbers.
	Table3EcoCPUReductionPct      = 18.0
	Table3EcoSystemReductionPct   = 11.0
	Table3RelatedWorkReductionPct = 5.66

	// HPCG problem parameters used throughout the evaluation.
	HPCGProblemDim   = 104 // x = y = z = 104
	HPCGProblemRAMGB = 32  // reported working-set size
	SystemRAMGB      = 256 // Lenovo SR650 under test
	SampleSeconds    = 3   // telemetry sample interval in §5.2
	JobMinutes       = 20  // nominal per-configuration job length
	CPUModel         = "AMD EPYC 7502P 32-Core Processor"
	CPUCores         = 32
	CPUThreadsPer    = 2
)

// FrequenciesKHz is the DVFS ladder of the evaluation node as reported
// by Chronus in Figure 1 (scaling_available_frequencies).
var FrequenciesKHz = []int{1_500_000, 2_200_000, 2_500_000}

// FrequenciesGHz is the same ladder in GHz, the unit Tables 1–6 use.
var FrequenciesGHz = []float64{1.5, 2.2, 2.5}

// CoreCounts is the set of scheduled-core counts appearing in the
// sweep of Tables 4–6.
var CoreCounts = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 15, 16, 18, 20, 21, 24, 25, 27, 28, 30, 32}

// Table1 is the paper's Table 1 (best 13 configurations). The first
// row is the winner the eco plugin selects; rows 11–12 are the
// standard Slurm configuration.
var Table1 = []Table1Row{
	{32, 2.2, false, 0.0488, 1.13, 0.98},
	{32, 2.2, true, 0.0483, 1.12, 0.98},
	{32, 1.5, false, 0.0480, 1.11, 0.90},
	{32, 1.5, true, 0.0469, 1.09, 0.90},
	{30, 2.2, true, 0.0456, 1.06, 0.93},
	{30, 2.2, false, 0.0456, 1.06, 0.93},
	{30, 1.5, true, 0.0446, 1.03, 0.86},
	{28, 2.2, false, 0.0444, 1.03, 0.88},
	{30, 1.5, false, 0.0441, 1.02, 0.86},
	{28, 2.2, true, 0.0437, 1.01, 0.88},
	{32, 2.5, false, 0.0432, 1.00, 1.00},
	{32, 2.5, true, 0.0431, 1.00, 1.00},
	{28, 1.5, true, 0.0425, 0.99, 0.81},
}

// Table2Standard and Table2Best are the two rows of Table 2.
var (
	Table2Standard = RunAggregate{
		Name:           "Standard",
		AvgSystemWatts: 216.6,
		AvgCPUWatts:    120.4,
		SystemKJ:       240.2,
		CPUKJ:          133.5,
		AvgCPUTempC:    62.8,
		RuntimeSeconds: 18*60 + 29,
	}
	Table2Best = RunAggregate{
		Name:           "Best",
		AvgSystemWatts: 190.1,
		AvgCPUWatts:    97.4,
		SystemKJ:       214.4,
		CPUKJ:          109.8,
		AvgCPUTempC:    53.8,
		RuntimeSeconds: 18*60 + 47,
	}
)

// Sweep is the full 138-row dataset of Tables 4–6, in the paper's
// order (descending GFLOPS per watt).
var Sweep = []SweepRow{
	// Table 4 (part 1).
	{32, 2.2, 0.048767, false},
	{32, 2.2, 0.048286, true},
	{32, 1.5, 0.047978, false},
	{32, 1.5, 0.046933, true},
	{30, 2.2, 0.045618, true},
	{30, 2.2, 0.045603, false},
	{30, 1.5, 0.044614, true},
	{28, 2.2, 0.044392, false},
	{30, 1.5, 0.044127, false},
	{28, 2.2, 0.043690, true},
	{32, 2.5, 0.043168, false},
	{32, 2.5, 0.043122, true},
	{28, 1.5, 0.042526, true},
	{27, 2.2, 0.042289, true},
	{27, 2.2, 0.042171, false},
	{28, 1.5, 0.041438, false},
	{27, 1.5, 0.041218, true},
	{30, 2.5, 0.040994, false},
	{27, 1.5, 0.040803, false},
	{25, 2.2, 0.040196, false},
	{25, 2.2, 0.039824, true},
	{30, 2.5, 0.039537, true},
	{28, 2.5, 0.038596, true},
	{25, 1.5, 0.038480, false},
	{28, 2.5, 0.038408, false},
	{24, 2.2, 0.038154, false},
	{24, 2.2, 0.037978, true},
	{25, 1.5, 0.037609, true},
	{27, 2.5, 0.037581, true},
	{27, 2.5, 0.037275, false},
	{24, 1.5, 0.037072, false},
	{24, 1.5, 0.036513, true},
	{25, 2.5, 0.035153, true},
	{25, 2.5, 0.034758, false},
	{21, 2.2, 0.034490, false},
	{21, 2.2, 0.034477, true},
	{24, 2.5, 0.034234, false},
	{20, 2.2, 0.033840, false},
	{21, 1.5, 0.033378, false},
	{20, 2.2, 0.033332, true},
	{21, 1.5, 0.033251, true},
	{24, 2.5, 0.032800, true},
	{20, 1.5, 0.032278, false},
	{21, 2.5, 0.031940, false},
	{21, 2.5, 0.031821, true},
	{20, 1.5, 0.031744, true},
	{20, 2.5, 0.031623, true},
	{20, 2.5, 0.031473, false},
	{18, 2.2, 0.031221, false},
	{18, 2.2, 0.031209, true},
	{18, 1.5, 0.030226, false},
	// Table 5 (part 2).
	{18, 1.5, 0.030030, true},
	{8, 2.5, 0.030025, false},
	{16, 2.2, 0.029694, false},
	{18, 2.5, 0.029675, false},
	{16, 2.2, 0.029481, true},
	{8, 2.2, 0.029461, true},
	{18, 2.5, 0.029385, true},
	{9, 2.2, 0.029378, false},
	{8, 2.2, 0.029355, false},
	{8, 2.5, 0.029334, true},
	{10, 2.2, 0.029024, false},
	{10, 2.5, 0.028914, false},
	{10, 2.2, 0.028787, true},
	{9, 2.2, 0.028717, true},
	{6, 2.5, 0.028709, true},
	{9, 2.5, 0.028601, true},
	{12, 2.2, 0.028460, false},
	{9, 2.5, 0.028423, false},
	{16, 2.5, 0.028402, false},
	{12, 2.5, 0.028379, true},
	{12, 2.5, 0.028355, false},
	{16, 2.5, 0.028317, true},
	{10, 2.5, 0.028312, true},
	{15, 2.2, 0.028312, true},
	{12, 2.2, 0.028258, true},
	{14, 2.2, 0.028235, true},
	{16, 1.5, 0.028144, false},
	{14, 2.2, 0.028097, false},
	{6, 2.5, 0.027928, false},
	{15, 2.2, 0.027785, false},
	{7, 2.5, 0.027625, false},
	{7, 2.5, 0.027594, true},
	{14, 1.5, 0.027554, false},
	{16, 1.5, 0.027520, true},
	{15, 2.5, 0.027500, false},
	{15, 2.5, 0.027353, true},
	{7, 2.2, 0.027228, true},
	{14, 1.5, 0.027054, true},
	{7, 2.2, 0.027033, false},
	{14, 2.5, 0.027008, false},
	{12, 1.5, 0.026994, false},
	{15, 1.5, 0.026925, true},
	{15, 1.5, 0.026879, false},
	{14, 2.5, 0.026860, true},
	{6, 2.2, 0.026797, true},
	{10, 1.5, 0.026599, false},
	{8, 1.5, 0.026577, true},
	{10, 1.5, 0.026549, true},
	{6, 2.2, 0.026512, false},
	{8, 1.5, 0.026397, false},
	{9, 1.5, 0.026236, false},
	{12, 1.5, 0.026219, true},
	{9, 1.5, 0.026151, true},
	{5, 2.5, 0.026056, true},
	{5, 2.5, 0.026028, false},
	// Table 6 (part 3).
	{4, 2.5, 0.025157, true},
	{4, 2.5, 0.024648, false},
	{5, 2.2, 0.023307, false},
	{7, 1.5, 0.022859, true},
	{5, 2.2, 0.022752, true},
	{7, 1.5, 0.022643, false},
	{4, 2.2, 0.022313, false},
	{6, 1.5, 0.021718, true},
	{6, 1.5, 0.021681, false},
	{4, 2.2, 0.021294, true},
	{3, 2.5, 0.020024, false},
	{3, 2.5, 0.019348, true},
	{5, 1.5, 0.018599, true},
	{5, 1.5, 0.018445, false},
	{4, 1.5, 0.016654, false},
	{4, 1.5, 0.016160, true},
	{2, 2.5, 0.016094, false},
	{2, 2.5, 0.015917, true},
	{3, 2.2, 0.015503, true},
	{1, 2.5, 0.014558, false},
	{1, 2.5, 0.014548, true},
	{3, 2.2, 0.014462, false},
	{2, 2.2, 0.011852, false},
	{3, 1.5, 0.011503, true},
	{2, 2.2, 0.011355, true},
	{3, 1.5, 0.011177, false},
	{1, 2.2, 0.010560, true},
	{1, 2.2, 0.010462, false},
	{1, 1.5, 0.007571, true},
	{1, 1.5, 0.007569, false},
	{2, 1.5, 0.007236, false},
	{2, 1.5, 0.007150, true},
}

// Lookup returns the sweep row for a configuration, if present.
func Lookup(cores int, ghz float64, ht bool) (SweepRow, bool) {
	for _, r := range Sweep {
		if r.Cores == cores && r.GHz == ghz && r.HyperThread == ht {
			return r, true
		}
	}
	return SweepRow{}, false
}

// BestRow returns the sweep row with the highest GFLOPS per watt.
func BestRow() SweepRow {
	best := Sweep[0]
	for _, r := range Sweep[1:] {
		if r.GFLOPSPerWatt > best.GFLOPSPerWatt {
			best = r
		}
	}
	return best
}

// StandardRow returns the standard Slurm configuration's sweep row
// (all cores at the highest frequency, no hyper-threading).
func StandardRow() SweepRow {
	r, _ := Lookup(CPUCores, 2.5, false)
	return r
}
