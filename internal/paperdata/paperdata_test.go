package paperdata

import (
	"math"
	"testing"
)

func TestSweepIsComplete(t *testing.T) {
	// 23 core counts × 3 frequencies × 2 hyper-threading settings.
	want := len(CoreCounts) * len(FrequenciesGHz) * 2
	if len(Sweep) != want {
		t.Fatalf("Sweep has %d rows, want %d", len(Sweep), want)
	}
	seen := map[[3]int]bool{}
	for _, r := range Sweep {
		key := [3]int{r.Cores, int(r.GHz * 10), b2i(r.HyperThread)}
		if seen[key] {
			t.Fatalf("duplicate sweep row: %+v", r)
		}
		seen[key] = true
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestSweepSortedDescending(t *testing.T) {
	for i := 1; i < len(Sweep); i++ {
		if Sweep[i].GFLOPSPerWatt > Sweep[i-1].GFLOPSPerWatt {
			t.Fatalf("row %d (%v) out of order after %v", i, Sweep[i], Sweep[i-1])
		}
	}
}

func TestSweepValuesSane(t *testing.T) {
	for _, r := range Sweep {
		if r.Cores < 1 || r.Cores > CPUCores {
			t.Fatalf("cores out of range: %+v", r)
		}
		okFreq := false
		for _, f := range FrequenciesGHz {
			if r.GHz == f {
				okFreq = true
			}
		}
		if !okFreq {
			t.Fatalf("unknown frequency: %+v", r)
		}
		if r.GFLOPSPerWatt <= 0 || r.GFLOPSPerWatt > 0.1 {
			t.Fatalf("implausible GFLOPS/W: %+v", r)
		}
	}
}

func TestBestRowMatchesPaper(t *testing.T) {
	best := BestRow()
	if best.Cores != 32 || best.GHz != 2.2 || best.HyperThread {
		t.Fatalf("best row = %+v, paper says 32 cores @ 2.2 GHz without HT", best)
	}
	if best.GFLOPSPerWatt != 0.048767 {
		t.Fatalf("best GFLOPS/W = %v, want 0.048767", best.GFLOPSPerWatt)
	}
}

func TestStandardRowMatchesPaper(t *testing.T) {
	std := StandardRow()
	if std.GFLOPSPerWatt != 0.043168 {
		t.Fatalf("standard GFLOPS/W = %v, want 0.043168", std.GFLOPSPerWatt)
	}
}

func TestHeadlineImprovementIs13Percent(t *testing.T) {
	// The paper's headline: best is 13 % better GFLOPS/W than standard.
	ratio := BestRow().GFLOPSPerWatt / StandardRow().GFLOPSPerWatt
	if math.Abs(ratio-1.13) > 0.005 {
		t.Fatalf("best/standard = %.4f, want ≈1.13", ratio)
	}
}

func TestTable1ConsistentWithSweep(t *testing.T) {
	for _, row := range Table1 {
		sw, ok := Lookup(row.Cores, row.GHz, row.HyperThread)
		if !ok {
			t.Fatalf("Table 1 row %+v missing from sweep", row)
		}
		// Table 1 rounds to four decimals.
		if math.Abs(sw.GFLOPSPerWatt-row.GFLOPSPerWatt) > 5e-5 {
			t.Fatalf("Table 1 row %+v disagrees with sweep value %v", row, sw.GFLOPSPerWatt)
		}
	}
}

func TestTable1IsTop13OfSweep(t *testing.T) {
	for i, row := range Table1 {
		if Sweep[i].Cores != row.Cores || Sweep[i].GHz != row.GHz || Sweep[i].HyperThread != row.HyperThread {
			t.Fatalf("Table 1 row %d (%+v) is not sweep row %d (%+v)", i, row, i, Sweep[i])
		}
	}
}

func TestTable2EnergyConsistency(t *testing.T) {
	// kJ ≈ avg W × runtime for both rows (within rounding of the
	// published averages).
	for _, agg := range []RunAggregate{Table2Standard, Table2Best} {
		gotKJ := agg.AvgSystemWatts * float64(agg.RuntimeSeconds) / 1000
		if math.Abs(gotKJ-agg.SystemKJ)/agg.SystemKJ > 0.02 {
			t.Fatalf("%s: avgW×t = %.1f kJ, table says %.1f kJ", agg.Name, gotKJ, agg.SystemKJ)
		}
	}
}

func TestTable2HeadlineReductions(t *testing.T) {
	sysRed := 100 * (1 - Table2Best.SystemKJ/Table2Standard.SystemKJ)
	if math.Abs(sysRed-Table3EcoSystemReductionPct) > 0.8 {
		t.Fatalf("system energy reduction = %.2f%%, paper says ~11%%", sysRed)
	}
	cpuRed := 100 * (1 - Table2Best.CPUKJ/Table2Standard.CPUKJ)
	if math.Abs(cpuRed-Table3EcoCPUReductionPct) > 0.8 {
		t.Fatalf("CPU energy reduction = %.2f%%, paper says ~18%%", cpuRed)
	}
	tempRed := 100 * (1 - Table2Best.AvgCPUTempC/Table2Standard.AvgCPUTempC)
	if math.Abs(tempRed-14) > 1.0 {
		t.Fatalf("temperature reduction = %.2f%%, paper says ~14%%", tempRed)
	}
}

func TestEquation1(t *testing.T) {
	diff := math.Abs(Eq1IPMIWatts-Eq1WattmeterWatts) / Eq1IPMIWatts * 100
	if math.Abs(diff-Eq1PercentDiff) > 0.02 {
		t.Fatalf("Eq. 1 difference = %.2f%%, paper says 5.96%%", diff)
	}
}

func TestFig1AnchorConsistentWithSweep(t *testing.T) {
	// GFLOPS/W(standard) × avg system watts(standard) ≈ Fig. 1 GFLOPS.
	got := StandardRow().GFLOPSPerWatt * Table2Standard.AvgSystemWatts
	if math.Abs(got-Fig1GFLOPS)/Fig1GFLOPS > 0.01 {
		t.Fatalf("implied GFLOPS = %.3f, Figure 1 says %.5f", got, Fig1GFLOPS)
	}
}

func TestLookupMiss(t *testing.T) {
	if _, ok := Lookup(11, 2.5, false); ok {
		t.Fatal("Lookup(11 cores) should miss: 11 is not in the sweep")
	}
	if _, ok := Lookup(32, 2.0, false); ok {
		t.Fatal("Lookup(2.0 GHz) should miss")
	}
}

func TestFrequencyLaddersAgree(t *testing.T) {
	if len(FrequenciesKHz) != len(FrequenciesGHz) {
		t.Fatal("frequency ladders differ in length")
	}
	for i := range FrequenciesKHz {
		if math.Abs(float64(FrequenciesKHz[i])/1e6-FrequenciesGHz[i]) > 1e-9 {
			t.Fatalf("ladder mismatch at %d: %d kHz vs %v GHz", i, FrequenciesKHz[i], FrequenciesGHz[i])
		}
	}
}
