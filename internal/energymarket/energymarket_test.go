package energymarket

import (
	"testing"
	"testing/quick"
	"time"
)

var day = time.Date(2023, 5, 10, 0, 0, 0, 0, time.UTC)

func TestSolarShapeIsDiurnal(t *testing.T) {
	m := New(1)
	if m.SolarShare(day.Add(2*time.Hour)) != 0 {
		t.Fatal("solar at 02:00")
	}
	noon := m.SolarShare(day.Add(13 * time.Hour))
	morning := m.SolarShare(day.Add(8 * time.Hour))
	if noon <= morning || noon <= 0.2 {
		t.Fatalf("solar noon %v, morning %v", noon, morning)
	}
}

func TestWindIsSeededAndSmooth(t *testing.T) {
	a, b := New(1), New(1)
	other := New(2)
	at := day.Add(7 * time.Hour)
	if a.WindShare(at) != b.WindShare(at) {
		t.Fatal("same seed, different wind")
	}
	if a.WindShare(at) == other.WindShare(at) {
		t.Fatal("different seeds, identical wind")
	}
	// Smoothness: adjacent minutes differ by a tiny amount.
	d := a.WindShare(at.Add(time.Minute)) - a.WindShare(at)
	if d > 0.01 || d < -0.01 {
		t.Fatalf("wind jumps %v per minute", d)
	}
}

func TestSharesAndPricesBounded(t *testing.T) {
	m := New(7)
	if err := quick.Check(func(minutes uint16) bool {
		at := day.Add(time.Duration(minutes) * time.Minute)
		s := m.RenewableShare(at)
		p := m.Price(at)
		ci := m.CarbonIntensity(at)
		return s >= 0 && s <= 0.9 && p >= 0.02 && p < 1 && ci >= 0 && ci <= m.GridCarbon
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPriceRespondsToRenewables(t *testing.T) {
	m := New(3)
	// Find a high- and a low-renewable instant across two days.
	var hiT, loT time.Time
	hi, lo := -1.0, 2.0
	for off := time.Duration(0); off < 48*time.Hour; off += 30 * time.Minute {
		at := day.Add(off)
		s := m.RenewableShare(at)
		if s > hi {
			hi, hiT = s, at
		}
		if s < lo {
			lo, loT = s, at
		}
	}
	if hi-lo < 0.3 {
		t.Fatalf("renewable range too narrow: %v..%v", lo, hi)
	}
	if m.CarbonIntensity(hiT) >= m.CarbonIntensity(loT) {
		t.Fatal("carbon intensity not lower when renewables are high")
	}
}

func TestJobCostIntegration(t *testing.T) {
	m := New(1)
	// 1 kW for 1 hour = 1 kWh → cost equals the mean price; bounded by
	// min/max over the hour.
	start := day.Add(10 * time.Hour)
	cost := m.JobCost(start, time.Hour, 1000)
	if cost <= 0.02 || cost >= 1 {
		t.Fatalf("cost = %v", cost)
	}
	if m.JobCost(start, 0, 1000) != 0 || m.JobCost(start, time.Hour, 0) != 0 {
		t.Fatal("zero duration or power should cost nothing")
	}
	// Double power → double cost.
	if c2 := m.JobCost(start, time.Hour, 2000); c2 < cost*1.99 || c2 > cost*2.01 {
		t.Fatalf("cost not linear in power: %v vs %v", c2, cost)
	}
}

func TestBestStartBeatsWorstAndNaive(t *testing.T) {
	m := New(5)
	d := 2 * time.Hour
	const powerW = 190.1                                // the paper's best-config draw
	naive := m.JobCost(day.Add(8*time.Hour), d, powerW) // submit at morning peak
	start, best, err := m.BestStart(day, day.Add(24*time.Hour), d, powerW, 15*time.Minute, MinCost)
	if err != nil {
		t.Fatal(err)
	}
	if best >= naive {
		t.Fatalf("best start %v (%.4f EUR) no better than naive (%.4f EUR)", start, best, naive)
	}
	// The chosen start must actually cost what BestStart reported.
	if got := m.JobCost(start, d, powerW); got != best {
		t.Fatalf("reported %v, recomputed %v", best, got)
	}
}

func TestBestStartCarbonObjective(t *testing.T) {
	m := New(5)
	d := 3 * time.Hour
	start, carbon, err := m.BestStart(day, day.Add(24*time.Hour), d, 200, 30*time.Minute, MinCarbon)
	if err != nil {
		t.Fatal(err)
	}
	if carbon <= 0 {
		t.Fatalf("carbon = %v", carbon)
	}
	// Optimal carbon start should sit in a high-renewable region.
	if m.RenewableShare(start.Add(d/2)) < 0.3 {
		t.Fatalf("greenest start %v has renewable share %.2f", start, m.RenewableShare(start.Add(d/2)))
	}
}

func TestBestStartRespectsWindow(t *testing.T) {
	m := New(1)
	start, _, err := m.BestStart(day, day.Add(4*time.Hour), 2*time.Hour, 200, 10*time.Minute, MinCost)
	if err != nil {
		t.Fatal(err)
	}
	if start.Before(day) || start.Add(2*time.Hour).After(day.Add(4*time.Hour)) {
		t.Fatalf("start %v violates window", start)
	}
}

func TestBestStartErrors(t *testing.T) {
	m := New(1)
	if _, _, err := m.BestStart(day, day.Add(time.Hour), 2*time.Hour, 200, time.Minute, MinCost); err == nil {
		t.Fatal("window shorter than job accepted")
	}
	if _, _, err := m.BestStart(day, day.Add(4*time.Hour), time.Hour, 200, 0, MinCost); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestForecastPriceHorizonScaling(t *testing.T) {
	m := New(4)
	at := day.Add(30 * time.Hour)
	if got := m.ForecastPrice(at, 0, 0.1, 1); got != m.Price(at) {
		t.Fatal("zero-horizon forecast should equal the realised price")
	}
	// Error magnitude grows with horizon (statistically, over hours).
	var nearErr, farErr float64
	for h := 0; h < 48; h++ {
		tt := day.Add(time.Duration(h) * time.Hour)
		p := m.Price(tt)
		nearErr += relAbs(m.ForecastPrice(tt, 2*time.Hour, 0.15, 7), p)
		farErr += relAbs(m.ForecastPrice(tt, 40*time.Hour, 0.15, 7), p)
	}
	if farErr <= nearErr {
		t.Fatalf("forecast error did not grow with horizon: near %.3f vs far %.3f", nearErr, farErr)
	}
}

func relAbs(a, b float64) float64 {
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}

func TestForecastSchedulingRegretBounded(t *testing.T) {
	m := New(6)
	d := 2 * time.Hour
	const powerW = 190.1
	_, oracle, err := m.BestStart(day, day.Add(48*time.Hour), d, powerW, 15*time.Minute, MinCost)
	if err != nil {
		t.Fatal(err)
	}
	worst := m.JobCost(day.Add(8*time.Hour), d, powerW) // morning peak

	// With moderate forecast error, realised cost sits between the
	// oracle and the worst naive choice, much closer to the oracle.
	var totalRegret float64
	const trials = 10
	for seed := uint64(0); seed < trials; seed++ {
		_, expected, realised, err := m.BestStartWithForecast(
			day, day.Add(48*time.Hour), d, powerW, 15*time.Minute, 0.10, seed)
		if err != nil {
			t.Fatal(err)
		}
		if expected <= 0 || realised < oracle-1e-9 {
			t.Fatalf("realised %.4f below oracle %.4f", realised, oracle)
		}
		totalRegret += (realised - oracle) / oracle
	}
	meanRegret := totalRegret / trials
	if meanRegret > 0.15 {
		t.Fatalf("mean forecast regret %.1f%% too high for 10%% day-ahead error", 100*meanRegret)
	}
	if oracle >= worst {
		t.Fatal("oracle no better than the worst naive start — market too flat for the test")
	}
}

func TestForecastWindowErrors(t *testing.T) {
	m := New(1)
	if _, _, _, err := m.BestStartWithForecast(day, day.Add(time.Hour), 2*time.Hour, 100, time.Minute, 0.1, 1); err == nil {
		t.Fatal("short window accepted")
	}
	if _, _, _, err := m.BestStartWithForecast(day, day.Add(6*time.Hour), time.Hour, 100, 0, 0.1, 1); err == nil {
		t.Fatal("zero step accepted")
	}
}
