// Package energymarket implements the paper's §6.2.4 future-work
// extension: scheduling jobs when energy is cheap or renewable — the
// practice the paper attributes to Vestas and Lancium. It provides a
// deterministic synthetic electricity market (diurnal demand, solar
// and wind generation, price coupling) and start-time policies that
// minimise a job's energy cost or carbon intensity over a window.
//
// The market is synthetic because spot-price feeds are a proprietary
// data gate; the generator reproduces the properties the policies
// depend on: day/night price cycles, a midday solar valley and
// multi-hour wind regimes.
package energymarket

import (
	"fmt"
	"math"
	"time"

	"ecosched/internal/simclock"
)

// Market is a deterministic synthetic electricity market.
type Market struct {
	seed uint64
	// BasePrice is the mean spot price in EUR/kWh.
	BasePrice float64
	// DemandSwing scales the diurnal demand effect on price.
	DemandSwing float64
	// RenewableDiscount is how strongly renewable share depresses the
	// price (EUR/kWh at 100 % share).
	RenewableDiscount float64
	// GridCarbon is the carbon intensity of non-renewable generation
	// in gCO2/kWh; renewables count as zero.
	GridCarbon float64
}

// New returns a market with Northern-European-ish defaults. The seed
// selects the wind-regime realisation.
func New(seed uint64) *Market {
	return &Market{
		seed:              seed,
		BasePrice:         0.25,
		DemandSwing:       0.10,
		RenewableDiscount: 0.18,
		GridCarbon:        450,
	}
}

// SolarShare returns the solar fraction of generation at t: a clear
// diurnal bell, zero at night.
func (m *Market) SolarShare(t time.Time) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60
	if h < 6 || h > 20 {
		return 0
	}
	x := (h - 13) / 7 // peak at 13:00
	bell := math.Cos(x * math.Pi / 2)
	return 0.35 * bell * bell
}

// WindShare returns the wind fraction of generation at t: multi-hour
// regimes derived deterministically from the seed and the hour index,
// smoothed between regime points.
func (m *Market) WindShare(t time.Time) float64 {
	// One regime value per 6-hour block, interpolated.
	block := t.Unix() / (6 * 3600)
	frac := float64(t.Unix()%(6*3600)) / (6 * 3600)
	a := m.regime(block)
	b := m.regime(block + 1)
	return a + (b-a)*frac
}

func (m *Market) regime(block int64) float64 {
	rng := simclock.NewRNG(m.seed ^ uint64(block)*0x9e3779b97f4a7c15)
	return 0.05 + 0.45*rng.Float64()
}

// RenewableShare is the total renewable fraction at t, capped at 90 %.
func (m *Market) RenewableShare(t time.Time) float64 {
	s := m.SolarShare(t) + m.WindShare(t)
	if s > 0.9 {
		s = 0.9
	}
	return s
}

// Price returns the spot price in EUR/kWh at t.
func (m *Market) Price(t time.Time) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60
	// Demand peaks around 08:00 and 19:00.
	demand := 0.6*peak(h, 8, 3) + 0.8*peak(h, 19, 3.5)
	p := m.BasePrice + m.DemandSwing*demand - m.RenewableDiscount*m.RenewableShare(t)
	if p < 0.02 {
		p = 0.02
	}
	return p
}

func peak(h, at, width float64) float64 {
	d := h - at
	return math.Exp(-d * d / (2 * width * width))
}

// CarbonIntensity returns gCO2/kWh at t.
func (m *Market) CarbonIntensity(t time.Time) float64 {
	return m.GridCarbon * (1 - m.RenewableShare(t))
}

// JobCost integrates price × power over a run starting at start,
// returning EUR. Sampling is minute-granular.
func (m *Market) JobCost(start time.Time, d time.Duration, powerW float64) float64 {
	return m.integrate(start, d, powerW, m.Price)
}

// JobCarbonG integrates carbon intensity × energy over a run,
// returning grams of CO2.
func (m *Market) JobCarbonG(start time.Time, d time.Duration, powerW float64) float64 {
	return m.integrate(start, d, powerW, m.CarbonIntensity)
}

func (m *Market) integrate(start time.Time, d time.Duration, powerW float64, rate func(time.Time) float64) float64 {
	if d <= 0 || powerW <= 0 {
		return 0
	}
	const step = time.Minute
	var total float64
	for off := time.Duration(0); off < d; off += step {
		slice := step
		if d-off < step {
			slice = d - off
		}
		kwh := powerW / 1000 * slice.Hours()
		total += rate(start.Add(off)) * kwh
	}
	return total
}

// Objective selects what a start-time search minimises.
type Objective int

// Objectives.
const (
	MinCost Objective = iota
	MinCarbon
)

// BestStart scans [windowStart, windowEnd − d] at the given step and
// returns the start time minimising the objective, with its value.
func (m *Market) BestStart(windowStart, windowEnd time.Time, d time.Duration, powerW float64, step time.Duration, obj Objective) (time.Time, float64, error) {
	if step <= 0 {
		return time.Time{}, 0, fmt.Errorf("energymarket: non-positive step")
	}
	latest := windowEnd.Add(-d)
	if latest.Before(windowStart) {
		return time.Time{}, 0, fmt.Errorf("energymarket: window %v shorter than job %v", windowEnd.Sub(windowStart), d)
	}
	eval := func(s time.Time) float64 {
		if obj == MinCarbon {
			return m.JobCarbonG(s, d, powerW)
		}
		return m.JobCost(s, d, powerW)
	}
	best := windowStart
	bestVal := eval(windowStart)
	for s := windowStart.Add(step); !s.After(latest); s = s.Add(step) {
		if v := eval(s); v < bestVal {
			best, bestVal = s, v
		}
	}
	return best, bestVal, nil
}

// ForecastPrice returns the day-ahead forecast for the price at t as
// seen `horizon` ahead of time: the realised price perturbed by noise
// that grows with the forecast horizon (errAt24h is the relative
// standard error at a 24-hour horizon). Deterministic per (market
// seed, forecast seed, hour).
func (m *Market) ForecastPrice(t time.Time, horizon time.Duration, errAt24h float64, seed uint64) float64 {
	p := m.Price(t)
	if horizon <= 0 || errAt24h <= 0 {
		return p
	}
	scale := errAt24h * math.Sqrt(horizon.Hours()/24)
	rng := simclock.NewRNG(m.seed ^ seed ^ uint64(t.Unix()/3600)*0x9e3779b97f4a7c15)
	f := p * (1 + scale*rng.Norm())
	if f < 0.02 {
		f = 0.02
	}
	return f
}

// BestStartWithForecast chooses a start time using forecast prices
// (as a real scheduler must) and returns the chosen start, the cost it
// *expected*, and the cost actually *realised*. Comparing the realised
// cost against BestStart's oracle answer measures how much forecast
// error costs.
func (m *Market) BestStartWithForecast(windowStart, windowEnd time.Time, d time.Duration, powerW float64, step time.Duration, errAt24h float64, seed uint64) (start time.Time, expected, realised float64, err error) {
	if step <= 0 {
		return time.Time{}, 0, 0, fmt.Errorf("energymarket: non-positive step")
	}
	latest := windowEnd.Add(-d)
	if latest.Before(windowStart) {
		return time.Time{}, 0, 0, fmt.Errorf("energymarket: window %v shorter than job %v", windowEnd.Sub(windowStart), d)
	}
	forecastCost := func(s time.Time) float64 {
		var total float64
		for off := time.Duration(0); off < d; off += time.Minute {
			slice := time.Minute
			if d-off < slice {
				slice = d - off
			}
			at := s.Add(off)
			kwh := powerW / 1000 * slice.Hours()
			total += m.ForecastPrice(at, at.Sub(windowStart), errAt24h, seed) * kwh
		}
		return total
	}
	start = windowStart
	expected = forecastCost(windowStart)
	for s := windowStart.Add(step); !s.After(latest); s = s.Add(step) {
		if v := forecastCost(s); v < expected {
			start, expected = s, v
		}
	}
	return start, expected, m.JobCost(start, d, powerW), nil
}
