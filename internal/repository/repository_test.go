package repository

import (
	"errors"
	"testing"
	"time"
)

var epoch = time.Date(2023, 5, 10, 3, 0, 0, 0, time.UTC)

// forEachImpl runs a behavioural test against both Repository
// implementations — the paper's point is that they are interchangeable.
func forEachImpl(t *testing.T, test func(t *testing.T, open func(t *testing.T) Repository)) {
	t.Helper()
	t.Run("filedb", func(t *testing.T) {
		test(t, func(t *testing.T) Repository {
			r, err := OpenDB(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			return r
		})
	})
	t.Run("csv", func(t *testing.T) {
		test(t, func(t *testing.T) Repository {
			r, err := OpenCSV(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			return r
		})
	})
}

func sampleSystem() System {
	return System{
		Key:            "AMD EPYC 7502P 32-Core Processor/32c/2t/262144MB",
		CPUName:        "AMD EPYC 7502P 32-Core Processor",
		Cores:          32,
		ThreadsPerCore: 2,
		FrequenciesKHz: []int{1_500_000, 2_200_000, 2_500_000},
		RAMMB:          262144,
	}
}

func TestSystemRoundTrip(t *testing.T) {
	forEachImpl(t, func(t *testing.T, open func(t *testing.T) Repository) {
		r := open(t)
		id, err := r.SaveSystem(sampleSystem())
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.GetSystem(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.CPUName != sampleSystem().CPUName || got.Cores != 32 {
			t.Fatalf("got %+v", got)
		}
		if len(got.FrequenciesKHz) != 3 || got.FrequenciesKHz[1] != 2_200_000 {
			t.Fatalf("frequencies lost: %v", got.FrequenciesKHz)
		}
	})
}

func TestSaveSystemIdempotentOnKey(t *testing.T) {
	forEachImpl(t, func(t *testing.T, open func(t *testing.T) Repository) {
		r := open(t)
		id1, _ := r.SaveSystem(sampleSystem())
		id2, err := r.SaveSystem(sampleSystem())
		if err != nil {
			t.Fatal(err)
		}
		if id1 != id2 {
			t.Fatalf("duplicate key produced new id: %d vs %d", id1, id2)
		}
		systems, _ := r.ListSystems()
		if len(systems) != 1 {
			t.Fatalf("ListSystems = %d entries", len(systems))
		}
	})
}

func TestSystemKeyRequired(t *testing.T) {
	forEachImpl(t, func(t *testing.T, open func(t *testing.T) Repository) {
		r := open(t)
		if _, err := r.SaveSystem(System{CPUName: "x"}); err == nil {
			t.Fatal("system without key accepted")
		}
	})
}

func TestFindSystemByKey(t *testing.T) {
	forEachImpl(t, func(t *testing.T, open func(t *testing.T) Repository) {
		r := open(t)
		id, _ := r.SaveSystem(sampleSystem())
		got, ok, err := r.FindSystemByKey(sampleSystem().Key)
		if err != nil || !ok || got.ID != id {
			t.Fatalf("find: %+v %v %v", got, ok, err)
		}
		if _, ok, _ := r.FindSystemByKey("other"); ok {
			t.Fatal("found nonexistent key")
		}
	})
}

func TestGetSystemMissing(t *testing.T) {
	forEachImpl(t, func(t *testing.T, open func(t *testing.T) Repository) {
		r := open(t)
		if _, err := r.GetSystem(42); !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestBenchmarkFiltering(t *testing.T) {
	forEachImpl(t, func(t *testing.T, open func(t *testing.T) Repository) {
		r := open(t)
		sysID, _ := r.SaveSystem(sampleSystem())
		other := sampleSystem()
		other.Key = "other-system"
		otherID, _ := r.SaveSystem(other)

		for i, spec := range []struct {
			sys  int64
			hash string
		}{{sysID, "hpcg"}, {sysID, "hpcg"}, {sysID, "lammps"}, {otherID, "hpcg"}} {
			_, err := r.SaveBenchmark(Benchmark{
				SystemID: spec.sys, AppHash: spec.hash,
				Cores: 32, FreqKHz: 2_200_000, ThreadsPerCore: 1,
				GFLOPS: 9 + float64(i), AvgSystemW: 190, Created: epoch,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		all, _ := r.ListBenchmarks(sysID, "")
		if len(all) != 3 {
			t.Fatalf("system filter: %d rows", len(all))
		}
		hpcg, _ := r.ListBenchmarks(sysID, "hpcg")
		if len(hpcg) != 2 {
			t.Fatalf("app filter: %d rows", len(hpcg))
		}
		everything, _ := r.ListBenchmarks(0, "")
		if len(everything) != 4 {
			t.Fatalf("no filter: %d rows", len(everything))
		}
	})
}

func TestBenchmarkRequiresSystem(t *testing.T) {
	forEachImpl(t, func(t *testing.T, open func(t *testing.T) Repository) {
		r := open(t)
		if _, err := r.SaveBenchmark(Benchmark{AppHash: "x"}); err == nil {
			t.Fatal("benchmark without system accepted")
		}
	})
}

func TestGFLOPSPerWatt(t *testing.T) {
	b := Benchmark{GFLOPS: 9.27, AvgSystemW: 190.1}
	if got := b.GFLOPSPerWatt(); got < 0.0487 || got > 0.0489 {
		t.Fatalf("GFLOPSPerWatt = %v", got)
	}
	if (Benchmark{GFLOPS: 9}).GFLOPSPerWatt() != 0 {
		t.Fatal("zero power should yield zero efficiency")
	}
}

func TestModelRoundTrip(t *testing.T) {
	forEachImpl(t, func(t *testing.T, open func(t *testing.T) Repository) {
		r := open(t)
		sysID, _ := r.SaveSystem(sampleSystem())
		id, err := r.SaveModel(ModelMeta{
			SystemID: sysID, AppHash: "hpcg", Optimizer: "linear-regression",
			BlobKey: "optimizers/model-1.json", TrainRows: 138, Created: epoch,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.GetModel(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.Optimizer != "linear-regression" || got.TrainRows != 138 {
			t.Fatalf("got %+v", got)
		}
		if !got.Created.Equal(epoch) {
			t.Fatalf("Created = %v, want %v", got.Created, epoch)
		}
		if _, err := r.GetModel(99); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing model err = %v", err)
		}
	})
}

func TestModelValidation(t *testing.T) {
	forEachImpl(t, func(t *testing.T, open func(t *testing.T) Repository) {
		r := open(t)
		if _, err := r.SaveModel(ModelMeta{Optimizer: "x"}); err == nil {
			t.Fatal("model without blob key accepted")
		}
		if _, err := r.SaveModel(ModelMeta{BlobKey: "x"}); err == nil {
			t.Fatal("model without optimizer accepted")
		}
	})
}

func TestRunsFilter(t *testing.T) {
	forEachImpl(t, func(t *testing.T, open func(t *testing.T) Repository) {
		r := open(t)
		r.SaveRun(Run{SystemID: 1, AppHash: "a", Started: epoch})
		r.SaveRun(Run{SystemID: 2, AppHash: "b", Started: epoch, Note: "sweep"})
		one, _ := r.ListRuns(1)
		if len(one) != 1 || one[0].AppHash != "a" {
			t.Fatalf("ListRuns(1) = %+v", one)
		}
		all, _ := r.ListRuns(0)
		if len(all) != 2 {
			t.Fatalf("ListRuns(0) = %d", len(all))
		}
	})
}

func TestPersistenceAcrossReopen(t *testing.T) {
	type opener func(dir string) (Repository, error)
	impls := map[string]opener{
		"filedb": func(dir string) (Repository, error) { return OpenDB(dir) },
		"csv":    func(dir string) (Repository, error) { return OpenCSV(dir) },
	}
	for name, open := range impls {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			r, err := open(dir)
			if err != nil {
				t.Fatal(err)
			}
			sysID, _ := r.SaveSystem(sampleSystem())
			runID, _ := r.SaveRun(Run{SystemID: sysID, AppHash: "hpcg", Started: epoch})
			r.SaveBenchmark(Benchmark{
				RunID: runID, SystemID: sysID, AppHash: "hpcg",
				Cores: 32, FreqKHz: 2_200_000, ThreadsPerCore: 1,
				GFLOPS: 9.27, AvgSystemW: 190.1, AvgCPUW: 97.4,
				SystemKJ: 214.4, CPUKJ: 109.8, RuntimeSeconds: 1127, Created: epoch,
			})
			r.SaveModel(ModelMeta{SystemID: sysID, Optimizer: "brute-force", BlobKey: "k", Created: epoch})
			r.Close()

			r2, err := open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			sys, err := r2.GetSystem(sysID)
			if err != nil || sys.Cores != 32 {
				t.Fatalf("system lost: %+v %v", sys, err)
			}
			bms, _ := r2.ListBenchmarks(sysID, "hpcg")
			if len(bms) != 1 || bms[0].GFLOPS != 9.27 || bms[0].RunID != runID {
				t.Fatalf("benchmarks lost: %+v", bms)
			}
			models, _ := r2.ListModels()
			if len(models) != 1 {
				t.Fatalf("models lost: %+v", models)
			}
			// New ids continue after the persisted ones.
			newSys := sampleSystem()
			newSys.Key = "second"
			id2, _ := r2.SaveSystem(newSys)
			if id2 <= sysID {
				t.Fatalf("id sequence regressed: %d after %d", id2, sysID)
			}
		})
	}
}

func TestSaveBenchmarksBatch(t *testing.T) {
	forEachImpl(t, func(t *testing.T, open func(t *testing.T) Repository) {
		r := open(t)
		sysID, _ := r.SaveSystem(sampleSystem())
		// A single save first, so the batch has to continue an existing
		// id sequence.
		firstID, err := r.SaveBenchmark(Benchmark{
			SystemID: sysID, AppHash: "hpcg", Cores: 1, FreqKHz: 1_500_000,
			ThreadsPerCore: 1, GFLOPS: 1, AvgSystemW: 100, Created: epoch,
		})
		if err != nil {
			t.Fatal(err)
		}
		batch := make([]Benchmark, 5)
		for i := range batch {
			batch[i] = Benchmark{
				SystemID: sysID, AppHash: "hpcg",
				Cores: i + 2, FreqKHz: 2_200_000, ThreadsPerCore: 1,
				GFLOPS: float64(i), AvgSystemW: 150, Created: epoch,
			}
		}
		ids, err := r.SaveBenchmarks(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 5 {
			t.Fatalf("ids = %v", ids)
		}
		for i, id := range ids {
			if id != firstID+int64(i+1) {
				t.Fatalf("ids = %v, want consecutive after %d", ids, firstID)
			}
		}
		rows, _ := r.ListBenchmarks(sysID, "hpcg")
		if len(rows) != 6 {
			t.Fatalf("ListBenchmarks = %d rows", len(rows))
		}
		for i, b := range rows[1:] {
			if b.ID != ids[i] || b.Cores != i+2 {
				t.Fatalf("row %d out of order: %+v", i, b)
			}
		}
		if _, err := r.SaveBenchmarks(nil); err != nil {
			t.Fatalf("empty batch: %v", err)
		}
		if _, err := r.SaveBenchmarks([]Benchmark{{AppHash: "x"}}); err == nil {
			t.Fatal("batch row without system id accepted")
		}
	})
}

func TestSaveBenchmarksPersistAcrossReopen(t *testing.T) {
	type opener func(dir string) (Repository, error)
	impls := map[string]opener{
		"filedb": func(dir string) (Repository, error) { return OpenDB(dir) },
		"csv":    func(dir string) (Repository, error) { return OpenCSV(dir) },
	}
	for name, open := range impls {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			r, err := open(dir)
			if err != nil {
				t.Fatal(err)
			}
			sysID, _ := r.SaveSystem(sampleSystem())
			batch := make([]Benchmark, 138)
			for i := range batch {
				batch[i] = Benchmark{
					SystemID: sysID, AppHash: "hpcg",
					Cores: i%32 + 1, FreqKHz: 2_200_000, ThreadsPerCore: 1,
					GFLOPS: float64(i), AvgSystemW: 190.1, Created: epoch,
					TraceKey: "traces/run1/x.csv",
				}
			}
			ids, err := r.SaveBenchmarks(batch)
			if err != nil {
				t.Fatal(err)
			}
			r.Close()

			r2, err := open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			rows, _ := r2.ListBenchmarks(sysID, "hpcg")
			if len(rows) != 138 {
				t.Fatalf("reopen: %d rows, want 138", len(rows))
			}
			last := rows[len(rows)-1]
			if last.ID != ids[137] || last.GFLOPS != 137 || last.TraceKey != "traces/run1/x.csv" {
				t.Fatalf("last row mangled: %+v", last)
			}
		})
	}
}

// TestCSVBenchmarkWriteCounts pins the sweep I/O fix: per-row saves
// keep the atomic whole-file rewrite, batches append in one write.
func TestCSVBenchmarkWriteCounts(t *testing.T) {
	r, err := OpenCSV(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sysID, _ := r.SaveSystem(sampleSystem())
	bench := func(c int) Benchmark {
		return Benchmark{SystemID: sysID, AppHash: "hpcg", Cores: c,
			FreqKHz: 2_200_000, ThreadsPerCore: 1, GFLOPS: 1, AvgSystemW: 100, Created: epoch}
	}
	if _, err := r.SaveBenchmark(bench(1)); err != nil {
		t.Fatal(err)
	}
	if rw, ap := r.BenchmarkWriteStats(); rw != 1 || ap != 0 {
		t.Fatalf("after single save: rewrites=%d appends=%d", rw, ap)
	}
	batch := make([]Benchmark, 50)
	for i := range batch {
		batch[i] = bench(i + 2)
	}
	if _, err := r.SaveBenchmarks(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SaveBenchmarks([]Benchmark{bench(60)}); err != nil {
		t.Fatal(err)
	}
	rw, ap := r.BenchmarkWriteStats()
	if rw != 1 {
		t.Fatalf("batch path rewrote the file: rewrites=%d", rw)
	}
	if ap != 2 {
		t.Fatalf("appends=%d, want one per batch (2)", ap)
	}
}
