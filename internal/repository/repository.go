// Package repository is Chronus's Repository integration interface
// (paper §3.2): persistence for runs, benchmarks, system information
// and model metadata. The paper ships CSV and SQLite implementations
// behind one interface; this package ships CSV (csv.go) and filedb
// (dbrepo.go), the stdlib-only embedded store standing in for SQLite.
package repository

import (
	"fmt"
	"time"
)

// System is a machine identity record — what init-model's --system
// flag selects (paper Figure 8 lists stored systems).
type System struct {
	ID  int64  `json:"id"`
	Key string `json:"key"` // stable identity (sysinfo.SystemInfo.Key)
	// ProcHash is the plugin-visible identifier: simple_hash over
	// /proc/cpuinfo + /proc/meminfo (paper §4.2.1). job_submit_eco
	// passes this to slurm-config, so Chronus stores it alongside the
	// human-readable key.
	ProcHash       string `json:"proc_hash"`
	CPUName        string `json:"cpu_name"`
	Cores          int    `json:"cores"`
	ThreadsPerCore int    `json:"threads_per_core"`
	FrequenciesKHz []int  `json:"frequencies_khz"`
	RAMMB          int    `json:"ram_mb"`
}

// Benchmark is one measured configuration point: the data model
// building consumes ("energy usage over time, execution time, and the
// configuration of the system", §3.1.2).
type Benchmark struct {
	ID             int64     `json:"id"`
	RunID          int64     `json:"run_id"`
	SystemID       int64     `json:"system_id"`
	AppHash        string    `json:"app_hash"` // hash of the benchmarked binary
	Cores          int       `json:"cores"`
	FreqKHz        int       `json:"freq_khz"`
	ThreadsPerCore int       `json:"threads_per_core"`
	GFLOPS         float64   `json:"gflops"`
	AvgSystemW     float64   `json:"avg_system_w"`
	AvgCPUW        float64   `json:"avg_cpu_w"`
	SystemKJ       float64   `json:"system_kj"`
	CPUKJ          float64   `json:"cpu_kj"`
	RuntimeSeconds float64   `json:"runtime_seconds"`
	Created        time.Time `json:"created"`
	// TraceKey locates the raw power-over-time samples of this run in
	// blob storage ("energy usage over time", §3.1.2); empty when the
	// trace was not retained.
	TraceKey string `json:"trace_key,omitempty"`
}

// GFLOPSPerWatt is the efficiency metric of Tables 1 and 4–6.
func (b Benchmark) GFLOPSPerWatt() float64 {
	if b.AvgSystemW <= 0 {
		return 0
	}
	return b.GFLOPS / b.AvgSystemW
}

// ModelMeta is the stored metadata of a trained optimizer: "path in
// blob storage, time on creation, etc." (§3.1.2 model building step 3).
type ModelMeta struct {
	ID        int64  `json:"id"`
	SystemID  int64  `json:"system_id"`
	AppHash   string `json:"app_hash"`
	Optimizer string `json:"optimizer"` // optimizer type name
	BlobKey   string `json:"blob_key"`  // key in blob storage
	TrainRows int    `json:"train_rows"`
	// CVR2 is the k-fold cross-validated R² of the model on its
	// training history (0 when not applicable, e.g. brute force).
	CVR2    float64   `json:"cv_r2"`
	Created time.Time `json:"created"`
}

// Run groups the benchmarks of one `chronus benchmark` invocation.
type Run struct {
	ID       int64     `json:"id"`
	SystemID int64     `json:"system_id"`
	AppHash  string    `json:"app_hash"`
	Started  time.Time `json:"started"`
	Note     string    `json:"note,omitempty"`
}

// ErrNotFound is returned for missing records.
var ErrNotFound = fmt.Errorf("repository: not found")

// Repository is the integration interface the application layer
// depends on (dependency inversion, paper Listing 1).
type Repository interface {
	// Systems. SaveSystem is idempotent on Key: saving a system whose
	// Key already exists returns the existing id.
	SaveSystem(System) (int64, error)
	GetSystem(id int64) (System, error)
	FindSystemByKey(key string) (System, bool, error)
	ListSystems() ([]System, error)

	// Runs.
	SaveRun(Run) (int64, error)
	ListRuns(systemID int64) ([]Run, error)

	// Benchmarks.
	SaveBenchmark(Benchmark) (int64, error)
	// SaveBenchmarks persists a batch of rows in one write: ids are
	// assigned in slice order and the whole batch is committed
	// together (append-mode CSV, single filedb transaction), so a
	// sweep of n configurations does O(n) I/O instead of O(n²).
	SaveBenchmarks([]Benchmark) ([]int64, error)
	// ListBenchmarks filters by system and, when appHash != "", by
	// application. Results come back in insertion order.
	ListBenchmarks(systemID int64, appHash string) ([]Benchmark, error)

	// Models.
	SaveModel(ModelMeta) (int64, error)
	GetModel(id int64) (ModelMeta, error)
	ListModels() ([]ModelMeta, error)

	// Close releases any underlying resources.
	Close() error
}
