package repository

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// CSVRepo implements Repository as four CSV files in a directory —
// the paper's "CSV File" Repository implementation. All rows are held
// in memory; every save rewrites the affected file atomically, which
// keeps the files valid at all times and is plenty for benchmark-scale
// data (hundreds of rows).
type CSVRepo struct {
	mu  sync.Mutex
	dir string

	systems    []System
	runs       []Run
	benchmarks []Benchmark
	models     []ModelMeta

	// Write-op accounting for benchmarks.csv: full atomic rewrites
	// (single saves) vs append-mode batch writes. Exposed via
	// BenchmarkWriteStats so tests can pin the sweep's I/O complexity.
	benchRewrites int
	benchAppends  int
}

// OpenCSV opens (creating if needed) a CSV repository rooted at dir.
func OpenCSV(dir string) (*CSVRepo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repository: %w", err)
	}
	r := &CSVRepo{dir: dir}
	if err := r.loadAll(); err != nil {
		return nil, err
	}
	return r, nil
}

// Close implements Repository. CSV files are rewritten on each save,
// so there is nothing to flush.
func (r *CSVRepo) Close() error { return nil }

// SaveSystem implements Repository.
func (r *CSVRepo) SaveSystem(s System) (int64, error) {
	if s.Key == "" {
		return 0, fmt.Errorf("repository: system key is empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.systems {
		if existing.Key == s.Key {
			return existing.ID, nil
		}
	}
	s.ID = nextID(len(r.systems), func(i int) int64 { return r.systems[i].ID })
	r.systems = append(r.systems, s)
	return s.ID, r.writeSystems()
}

// GetSystem implements Repository.
func (r *CSVRepo) GetSystem(id int64) (System, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.systems {
		if s.ID == id {
			return s, nil
		}
	}
	return System{}, fmt.Errorf("%w: system %d", ErrNotFound, id)
}

// FindSystemByKey implements Repository.
func (r *CSVRepo) FindSystemByKey(key string) (System, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.systems {
		if s.Key == key {
			return s, true, nil
		}
	}
	return System{}, false, nil
}

// ListSystems implements Repository.
func (r *CSVRepo) ListSystems() ([]System, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]System(nil), r.systems...), nil
}

// SaveRun implements Repository.
func (r *CSVRepo) SaveRun(run Run) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	run.ID = nextID(len(r.runs), func(i int) int64 { return r.runs[i].ID })
	r.runs = append(r.runs, run)
	return run.ID, r.writeRuns()
}

// ListRuns implements Repository.
func (r *CSVRepo) ListRuns(systemID int64) ([]Run, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Run
	for _, run := range r.runs {
		if systemID == 0 || run.SystemID == systemID {
			out = append(out, run)
		}
	}
	return out, nil
}

// SaveBenchmark implements Repository.
func (r *CSVRepo) SaveBenchmark(b Benchmark) (int64, error) {
	if b.SystemID == 0 {
		return 0, fmt.Errorf("repository: benchmark without system id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b.ID = nextID(len(r.benchmarks), func(i int) int64 { return r.benchmarks[i].ID })
	r.benchmarks = append(r.benchmarks, b)
	return b.ID, r.writeBenchmarks()
}

// SaveBenchmarks implements Repository. The batch is appended to
// benchmarks.csv in one write instead of rewriting the whole file per
// row; a missing file is created (header included) atomically.
func (r *CSVRepo) SaveBenchmarks(bs []Benchmark) ([]int64, error) {
	if len(bs) == 0 {
		return nil, nil
	}
	for i, b := range bs {
		if b.SystemID == 0 {
			return nil, fmt.Errorf("repository: benchmark %d without system id", i)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := nextID(len(r.benchmarks), func(i int) int64 { return r.benchmarks[i].ID })
	ids := make([]int64, len(bs))
	rows := make([][]string, len(bs))
	for i := range bs {
		bs[i].ID = id + int64(i)
		ids[i] = bs[i].ID
		rows[i] = benchmarkRow(bs[i])
	}
	if err := r.appendRows("benchmarks.csv", benchmarkHeader, rows); err != nil {
		return nil, err
	}
	r.benchmarks = append(r.benchmarks, bs...)
	r.benchAppends++
	return ids, nil
}

// BenchmarkWriteStats reports how benchmarks.csv has been written
// since open: full rewrites (per-row saves) and append-mode batch
// writes.
func (r *CSVRepo) BenchmarkWriteStats() (rewrites, appends int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.benchRewrites, r.benchAppends
}

// ListBenchmarks implements Repository.
func (r *CSVRepo) ListBenchmarks(systemID int64, appHash string) ([]Benchmark, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Benchmark
	for _, b := range r.benchmarks {
		if (systemID == 0 || b.SystemID == systemID) && (appHash == "" || b.AppHash == appHash) {
			out = append(out, b)
		}
	}
	return out, nil
}

// SaveModel implements Repository.
func (r *CSVRepo) SaveModel(m ModelMeta) (int64, error) {
	if m.Optimizer == "" || m.BlobKey == "" {
		return 0, fmt.Errorf("repository: model metadata incomplete (optimizer=%q blob=%q)", m.Optimizer, m.BlobKey)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m.ID = nextID(len(r.models), func(i int) int64 { return r.models[i].ID })
	r.models = append(r.models, m)
	return m.ID, r.writeModels()
}

// GetModel implements Repository.
func (r *CSVRepo) GetModel(id int64) (ModelMeta, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.models {
		if m.ID == id {
			return m, nil
		}
	}
	return ModelMeta{}, fmt.Errorf("%w: model %d", ErrNotFound, id)
}

// ListModels implements Repository.
func (r *CSVRepo) ListModels() ([]ModelMeta, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]ModelMeta(nil), r.models...), nil
}

func nextID(n int, get func(int) int64) int64 {
	var max int64
	for i := 0; i < n; i++ {
		if id := get(i); id > max {
			max = id
		}
	}
	return max + 1
}

// ---- file formats ----

func (r *CSVRepo) loadAll() error {
	if err := r.loadFile("systems.csv", 8, func(rec []string) error {
		s := System{}
		var err error
		if s.ID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
			return err
		}
		s.Key = rec[1]
		s.ProcHash = rec[2]
		s.CPUName = rec[3]
		if s.Cores, err = strconv.Atoi(rec[4]); err != nil {
			return err
		}
		if s.ThreadsPerCore, err = strconv.Atoi(rec[5]); err != nil {
			return err
		}
		if s.FrequenciesKHz, err = parseIntList(rec[6]); err != nil {
			return err
		}
		if s.RAMMB, err = strconv.Atoi(rec[7]); err != nil {
			return err
		}
		r.systems = append(r.systems, s)
		return nil
	}); err != nil {
		return err
	}

	if err := r.loadFile("runs.csv", 5, func(rec []string) error {
		run := Run{}
		var err error
		if run.ID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
			return err
		}
		if run.SystemID, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
			return err
		}
		run.AppHash = rec[2]
		if run.Started, err = parseUnix(rec[3]); err != nil {
			return err
		}
		run.Note = rec[4]
		r.runs = append(r.runs, run)
		return nil
	}); err != nil {
		return err
	}

	if err := r.loadFile("benchmarks.csv", 15, func(rec []string) error {
		b := Benchmark{}
		ints := []struct {
			dst *int64
			idx int
		}{{&b.ID, 0}, {&b.RunID, 1}, {&b.SystemID, 2}}
		for _, f := range ints {
			v, err := strconv.ParseInt(rec[f.idx], 10, 64)
			if err != nil {
				return err
			}
			*f.dst = v
		}
		b.AppHash = rec[3]
		var err error
		if b.Cores, err = strconv.Atoi(rec[4]); err != nil {
			return err
		}
		if b.FreqKHz, err = strconv.Atoi(rec[5]); err != nil {
			return err
		}
		if b.ThreadsPerCore, err = strconv.Atoi(rec[6]); err != nil {
			return err
		}
		floats := []struct {
			dst *float64
			idx int
		}{{&b.GFLOPS, 7}, {&b.AvgSystemW, 8}, {&b.AvgCPUW, 9}, {&b.SystemKJ, 10}, {&b.CPUKJ, 11}, {&b.RuntimeSeconds, 12}}
		for _, f := range floats {
			v, err := strconv.ParseFloat(rec[f.idx], 64)
			if err != nil {
				return err
			}
			*f.dst = v
		}
		if b.Created, err = parseUnix(rec[13]); err != nil {
			return err
		}
		b.TraceKey = rec[14]
		r.benchmarks = append(r.benchmarks, b)
		return nil
	}); err != nil {
		return err
	}

	return r.loadFile("models.csv", 8, func(rec []string) error {
		m := ModelMeta{}
		var err error
		if m.ID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
			return err
		}
		if m.SystemID, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
			return err
		}
		m.AppHash = rec[2]
		m.Optimizer = rec[3]
		m.BlobKey = rec[4]
		if m.TrainRows, err = strconv.Atoi(rec[5]); err != nil {
			return err
		}
		if m.CVR2, err = strconv.ParseFloat(rec[6], 64); err != nil {
			return err
		}
		if m.Created, err = parseUnix(rec[7]); err != nil {
			return err
		}
		r.models = append(r.models, m)
		return nil
	})
}

func (r *CSVRepo) loadFile(name string, fields int, row func([]string) error) error {
	path := filepath.Join(r.dir, name)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("repository: %w", err)
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return fmt.Errorf("repository: %s: %w", name, err)
	}
	for i, rec := range records {
		if i == 0 {
			continue // header
		}
		if len(rec) != fields {
			return fmt.Errorf("repository: %s row %d has %d fields, want %d", name, i, len(rec), fields)
		}
		if err := row(rec); err != nil {
			return fmt.Errorf("repository: %s row %d: %w", name, i, err)
		}
	}
	return nil
}

func (r *CSVRepo) writeFile(name string, header []string, rows [][]string) error {
	path := filepath.Join(r.dir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("repository: %w", err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err == nil {
		err = w.WriteAll(rows)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("repository: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repository: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repository: %w", err)
	}
	return nil
}

func (r *CSVRepo) writeSystems() error {
	rows := make([][]string, len(r.systems))
	for i, s := range r.systems {
		rows[i] = []string{
			strconv.FormatInt(s.ID, 10), s.Key, s.ProcHash, s.CPUName,
			strconv.Itoa(s.Cores), strconv.Itoa(s.ThreadsPerCore),
			formatIntList(s.FrequenciesKHz), strconv.Itoa(s.RAMMB),
		}
	}
	return r.writeFile("systems.csv",
		[]string{"id", "key", "proc_hash", "cpu_name", "cores", "threads_per_core", "frequencies_khz", "ram_mb"}, rows)
}

func (r *CSVRepo) writeRuns() error {
	rows := make([][]string, len(r.runs))
	for i, run := range r.runs {
		rows[i] = []string{
			strconv.FormatInt(run.ID, 10), strconv.FormatInt(run.SystemID, 10),
			run.AppHash, strconv.FormatInt(run.Started.Unix(), 10), run.Note,
		}
	}
	return r.writeFile("runs.csv",
		[]string{"id", "system_id", "app_hash", "started_unix", "note"}, rows)
}

var benchmarkHeader = []string{"id", "run_id", "system_id", "app_hash", "cores", "freq_khz", "threads_per_core",
	"gflops", "avg_system_w", "avg_cpu_w", "system_kj", "cpu_kj", "runtime_seconds", "created_unix",
	"trace_key"}

func benchmarkRow(b Benchmark) []string {
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return []string{
		strconv.FormatInt(b.ID, 10), strconv.FormatInt(b.RunID, 10),
		strconv.FormatInt(b.SystemID, 10), b.AppHash,
		strconv.Itoa(b.Cores), strconv.Itoa(b.FreqKHz), strconv.Itoa(b.ThreadsPerCore),
		ff(b.GFLOPS), ff(b.AvgSystemW), ff(b.AvgCPUW), ff(b.SystemKJ), ff(b.CPUKJ),
		ff(b.RuntimeSeconds), strconv.FormatInt(b.Created.Unix(), 10), b.TraceKey,
	}
}

func (r *CSVRepo) writeBenchmarks() error {
	rows := make([][]string, len(r.benchmarks))
	for i, b := range r.benchmarks {
		rows[i] = benchmarkRow(b)
	}
	r.benchRewrites++
	return r.writeFile("benchmarks.csv", benchmarkHeader, rows)
}

// appendRows appends rows to an existing CSV file in one write; when
// the file does not exist yet it is created atomically with header +
// rows. Unlike writeFile this is O(len(rows)), not O(total rows).
func (r *CSVRepo) appendRows(name string, header []string, rows [][]string) error {
	path := filepath.Join(r.dir, name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if os.IsNotExist(err) {
		return r.writeFile(name, header, rows)
	}
	if err != nil {
		return fmt.Errorf("repository: %w", err)
	}
	w := csv.NewWriter(f)
	werr := w.WriteAll(rows) // WriteAll flushes
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("repository: %w", werr)
	}
	return nil
}

func (r *CSVRepo) writeModels() error {
	rows := make([][]string, len(r.models))
	for i, m := range r.models {
		rows[i] = []string{
			strconv.FormatInt(m.ID, 10), strconv.FormatInt(m.SystemID, 10),
			m.AppHash, m.Optimizer, m.BlobKey, strconv.Itoa(m.TrainRows),
			strconv.FormatFloat(m.CVR2, 'g', -1, 64),
			strconv.FormatInt(m.Created.Unix(), 10),
		}
	}
	return r.writeFile("models.csv",
		[]string{"id", "system_id", "app_hash", "optimizer", "blob_key", "train_rows", "cv_r2", "created_unix"}, rows)
}

func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func formatIntList(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ";")
}

func parseUnix(s string) (time.Time, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(v, 0).UTC(), nil
}
