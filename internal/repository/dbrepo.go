package repository

import (
	"encoding/json"
	"errors"
	"fmt"

	"ecosched/internal/filedb"
)

// DBRepo implements Repository on internal/filedb — the embedded
// database playing SQLite's role in the paper.
type DBRepo struct {
	db         *filedb.DB
	systems    *filedb.Table
	runs       *filedb.Table
	benchmarks *filedb.Table
	models     *filedb.Table
}

// OpenDB opens (creating if needed) a filedb-backed repository rooted
// at dir.
func OpenDB(dir string) (*DBRepo, error) {
	db, err := filedb.Open(dir)
	if err != nil {
		return nil, err
	}
	r := &DBRepo{db: db}
	for _, t := range []struct {
		name string
		dst  **filedb.Table
	}{
		{"systems", &r.systems},
		{"runs", &r.runs},
		{"benchmarks", &r.benchmarks},
		{"models", &r.models},
	} {
		tbl, err := db.Table(t.name)
		if err != nil {
			db.Close()
			return nil, err
		}
		*t.dst = tbl
	}
	return r, nil
}

// Close implements Repository.
func (r *DBRepo) Close() error { return r.db.Close() }

// SaveSystem implements Repository.
func (r *DBRepo) SaveSystem(s System) (int64, error) {
	if s.Key == "" {
		return 0, fmt.Errorf("repository: system key is empty")
	}
	if existing, ok, err := r.FindSystemByKey(s.Key); err != nil {
		return 0, err
	} else if ok {
		return existing.ID, nil
	}
	id, err := r.systems.Insert(s)
	if err != nil {
		return 0, err
	}
	s.ID = id
	if err := r.systems.Update(id, s); err != nil {
		return 0, err
	}
	return id, nil
}

// GetSystem implements Repository.
func (r *DBRepo) GetSystem(id int64) (System, error) {
	var s System
	if err := r.systems.Get(id, &s); err != nil {
		return System{}, mapErr(err, "system", id)
	}
	s.ID = id
	return s, nil
}

// FindSystemByKey implements Repository.
func (r *DBRepo) FindSystemByKey(key string) (System, bool, error) {
	var found System
	ok := false
	r.systems.Each(func(id int64, data json.RawMessage) bool {
		var s System
		if json.Unmarshal(data, &s) == nil && s.Key == key {
			s.ID = id
			found, ok = s, true
			return false
		}
		return true
	})
	return found, ok, nil
}

// ListSystems implements Repository.
func (r *DBRepo) ListSystems() ([]System, error) {
	var out []System
	r.systems.Each(func(id int64, data json.RawMessage) bool {
		var s System
		if json.Unmarshal(data, &s) == nil {
			s.ID = id
			out = append(out, s)
		}
		return true
	})
	return out, nil
}

// SaveRun implements Repository.
func (r *DBRepo) SaveRun(run Run) (int64, error) {
	id, err := r.runs.Insert(run)
	if err != nil {
		return 0, err
	}
	run.ID = id
	return id, r.runs.Update(id, run)
}

// ListRuns implements Repository.
func (r *DBRepo) ListRuns(systemID int64) ([]Run, error) {
	var out []Run
	r.runs.Each(func(id int64, data json.RawMessage) bool {
		var run Run
		if json.Unmarshal(data, &run) == nil && (systemID == 0 || run.SystemID == systemID) {
			run.ID = id
			out = append(out, run)
		}
		return true
	})
	return out, nil
}

// SaveBenchmark implements Repository.
func (r *DBRepo) SaveBenchmark(b Benchmark) (int64, error) {
	if b.SystemID == 0 {
		return 0, fmt.Errorf("repository: benchmark without system id")
	}
	id, err := r.benchmarks.Insert(b)
	if err != nil {
		return 0, err
	}
	b.ID = id
	return id, r.benchmarks.Update(id, b)
}

// SaveBenchmarks implements Repository. The whole batch goes to the
// log as one contiguous write via filedb.InsertMany, with the final
// id embedded in each stored row up front — no per-row Insert+Update
// pair, so a batch of n rows costs n log records and one syscall.
func (r *DBRepo) SaveBenchmarks(bs []Benchmark) ([]int64, error) {
	if len(bs) == 0 {
		return nil, nil
	}
	for i, b := range bs {
		if b.SystemID == 0 {
			return nil, fmt.Errorf("repository: benchmark %d without system id", i)
		}
	}
	return r.benchmarks.InsertMany(len(bs), func(i int, id int64) (any, error) {
		bs[i].ID = id
		return bs[i], nil
	})
}

// ListBenchmarks implements Repository.
func (r *DBRepo) ListBenchmarks(systemID int64, appHash string) ([]Benchmark, error) {
	var out []Benchmark
	r.benchmarks.Each(func(id int64, data json.RawMessage) bool {
		var b Benchmark
		if json.Unmarshal(data, &b) == nil &&
			(systemID == 0 || b.SystemID == systemID) &&
			(appHash == "" || b.AppHash == appHash) {
			b.ID = id
			out = append(out, b)
		}
		return true
	})
	return out, nil
}

// SaveModel implements Repository.
func (r *DBRepo) SaveModel(m ModelMeta) (int64, error) {
	if m.Optimizer == "" || m.BlobKey == "" {
		return 0, fmt.Errorf("repository: model metadata incomplete (optimizer=%q blob=%q)", m.Optimizer, m.BlobKey)
	}
	id, err := r.models.Insert(m)
	if err != nil {
		return 0, err
	}
	m.ID = id
	return id, r.models.Update(id, m)
}

// GetModel implements Repository.
func (r *DBRepo) GetModel(id int64) (ModelMeta, error) {
	var m ModelMeta
	if err := r.models.Get(id, &m); err != nil {
		return ModelMeta{}, mapErr(err, "model", id)
	}
	m.ID = id
	return m, nil
}

// ListModels implements Repository.
func (r *DBRepo) ListModels() ([]ModelMeta, error) {
	var out []ModelMeta
	r.models.Each(func(id int64, data json.RawMessage) bool {
		var m ModelMeta
		if json.Unmarshal(data, &m) == nil {
			m.ID = id
			out = append(out, m)
		}
		return true
	})
	return out, nil
}

func mapErr(err error, kind string, id int64) error {
	if errors.Is(err, filedb.ErrNotFound) {
		return fmt.Errorf("%w: %s %d", ErrNotFound, kind, id)
	}
	return err
}
