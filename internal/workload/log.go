package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// LogVersion is the submission-log format version, written in the
// header line and checked on read.
const LogVersion = 1

// logHeader is the first JSONL line of a submission log. It embeds
// the full generating spec and the simulated start instant, so a log
// is self-contained: replay needs nothing but the log file.
type logHeader struct {
	WorkloadLog int   `json:"workload_log"`
	StartNanos  int64 `json:"start"`
	Spec        Spec  `json:"spec"`
}

// logRecord is one submission line. Field keys are short and times
// are UnixNano integers to keep million-line logs compact and the
// encoding byte-stable.
type logRecord struct {
	Seq       int     `json:"q"`
	AtNanos   int64   `json:"t"`
	Client    string  `json:"c"`
	JobName   string  `json:"n"`
	Partition string  `json:"p,omitempty"`
	Tasks     int     `json:"k,omitempty"`
	Threads   int     `json:"h,omitempty"`
	UserID    uint32  `json:"u,omitempty"`
	Comment   string  `json:"m,omitempty"`
	Limit     int64   `json:"l,omitempty"` // time limit, nanoseconds
	ShapeKind string  `json:"sk"`
	ShapeName string  `json:"sn,omitempty"`
	GFLOP     float64 `json:"sg,omitempty"`
	SleepNS   int64   `json:"sd,omitempty"`
	Profile   string  `json:"sp,omitempty"`
	Exclusive bool    `json:"x,omitempty"`
	Deferred  bool    `json:"df,omitempty"` // deferrable flag
	Deadline  int64   `json:"dl,omitempty"` // deadline, UnixNano
}

// LogWriter records submissions to a versioned JSONL log.
type LogWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewLogWriter writes the header line (format version, start instant,
// full spec) and returns a writer ready for Record calls.
func NewLogWriter(w io.Writer, spec Spec, start time.Time) (*LogWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	lw := &LogWriter{w: bw, enc: json.NewEncoder(bw)}
	if err := lw.enc.Encode(logHeader{
		WorkloadLog: LogVersion,
		StartNanos:  start.UnixNano(),
		Spec:        spec,
	}); err != nil {
		return nil, fmt.Errorf("workload: writing log header: %w", err)
	}
	return lw, nil
}

// Record appends one submission line.
func (lw *LogWriter) Record(s Submission) error {
	if lw.err != nil {
		return lw.err
	}
	rec := logRecord{
		Seq:       s.Seq,
		AtNanos:   s.At.UnixNano(),
		Client:    s.Client,
		JobName:   s.JobName,
		Partition: s.Partition,
		Tasks:     s.Tasks,
		Threads:   s.ThreadsPerCPU,
		UserID:    s.UserID,
		Comment:   s.Comment,
		Limit:     int64(s.TimeLimit),
		ShapeKind: string(s.Shape.Kind),
		ShapeName: s.Shape.Label,
		GFLOP:     s.Shape.GFLOP,
		SleepNS:   int64(s.Shape.Duration),
		Profile:   s.Shape.Profile,
		Exclusive: s.Exclusive,
		Deferred:  s.Deferrable,
	}
	if !s.Deadline.IsZero() {
		rec.Deadline = s.Deadline.UnixNano()
	}
	if err := lw.enc.Encode(rec); err != nil {
		lw.err = fmt.Errorf("workload: writing log record %d: %w", s.Seq, err)
		return lw.err
	}
	return nil
}

// Flush drains the buffered writer. Call it before closing the
// underlying file.
func (lw *LogWriter) Flush() error {
	if lw.err != nil {
		return lw.err
	}
	return lw.w.Flush()
}

// LogReader streams a recorded submission log back as a Source.
type LogReader struct {
	sc    *bufio.Scanner
	spec  Spec
	start time.Time
	line  int
}

// NewLogReader reads and checks the header line.
func NewLogReader(r io.Reader) (*LogReader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("workload: reading log header: %w", err)
		}
		return nil, fmt.Errorf("workload: empty submission log")
	}
	var h logHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("workload: parsing log header: %w", err)
	}
	if h.WorkloadLog != LogVersion {
		return nil, fmt.Errorf("workload: log version %d, want %d", h.WorkloadLog, LogVersion)
	}
	if err := h.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("workload: log header spec: %w", err)
	}
	return &LogReader{sc: sc, spec: h.Spec, start: time.Unix(0, h.StartNanos).UTC(), line: 1}, nil
}

// Spec returns the generating spec embedded in the log header.
func (lr *LogReader) Spec() Spec { return lr.spec }

// Start returns the simulated start instant the log was recorded at.
func (lr *LogReader) Start() time.Time { return lr.start }

// Next implements Source, streaming the recorded submissions in order.
func (lr *LogReader) Next() (Submission, bool, error) {
	if !lr.sc.Scan() {
		if err := lr.sc.Err(); err != nil {
			return Submission{}, false, fmt.Errorf("workload: reading log after line %d: %w", lr.line, err)
		}
		return Submission{}, false, nil
	}
	lr.line++
	var rec logRecord
	if err := json.Unmarshal(lr.sc.Bytes(), &rec); err != nil {
		return Submission{}, false, fmt.Errorf("workload: log line %d: %w", lr.line, err)
	}
	s := Submission{
		Seq:           rec.Seq,
		At:            time.Unix(0, rec.AtNanos).UTC(),
		Client:        rec.Client,
		JobName:       rec.JobName,
		Partition:     rec.Partition,
		Tasks:         rec.Tasks,
		ThreadsPerCPU: rec.Threads,
		UserID:        rec.UserID,
		Comment:       rec.Comment,
		TimeLimit:     time.Duration(rec.Limit),
		Shape: Shape{
			Kind:     ShapeKind(rec.ShapeKind),
			Label:    rec.ShapeName,
			GFLOP:    rec.GFLOP,
			Duration: time.Duration(rec.SleepNS),
			Profile:  rec.Profile,
		},
		Exclusive:  rec.Exclusive,
		Deferrable: rec.Deferred,
	}
	if rec.Deadline != 0 {
		s.Deadline = time.Unix(0, rec.Deadline).UTC()
	}
	if err := s.Shape.Validate(); err != nil {
		return Submission{}, false, fmt.Errorf("workload: log line %d: %w", lr.line, err)
	}
	return s, true, nil
}
