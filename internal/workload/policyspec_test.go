package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"ecosched/internal/simclock"
)

// policyTestSpec is testSpec plus a full policy block and the new
// per-client job fields.
func policyTestSpec() Spec {
	spec := testSpec()
	spec.Policy = &PolicySpec{
		PowerCapW:      4000,
		PartitionCapsW: []PartitionCap{{Name: "debug", CapW: 900}},
		CapMode:        "freqcap",
		CoSchedule:     true,
		Deferral: &DeferralSpec{
			Signal: SignalPrice, Threshold: 0.3,
			MaxDefer: Duration(2 * time.Hour), Check: Duration(10 * time.Minute),
		},
	}
	spec.Clients[0].Jobs.Profile = ProfileCompute
	spec.Clients[0].Jobs.ExclusiveFraction = 0.2
	spec.Clients[0].Jobs.DeferrableFraction = 0.5
	spec.Clients[0].Jobs.DeadlineSlack = Dist{Kind: DistUniform, Min: 3600, Max: 7200}
	spec.Clients[1].Jobs.Profile = ProfileMemory
	return spec
}

// TestPolicySpecValidateErrors covers the policy-block and new
// job-field validation branches.
func TestPolicySpecValidateErrors(t *testing.T) {
	mutate := map[string]func(*Spec){
		"empty policy block":          func(s *Spec) { s.Policy = &PolicySpec{} },
		"negative cluster cap":        func(s *Spec) { s.Policy.PowerCapW = -1 },
		"unknown cap partition":       func(s *Spec) { s.Policy.PartitionCapsW[0].Name = "gpu" },
		"duplicate cap partition":     func(s *Spec) { s.Policy.PartitionCapsW = append(s.Policy.PartitionCapsW, PartitionCap{Name: "debug", CapW: 1}) },
		"non-positive partition cap":  func(s *Spec) { s.Policy.PartitionCapsW[0].CapW = 0 },
		"unknown cap mode":            func(s *Spec) { s.Policy.CapMode = "turbo" },
		"cap mode without budget":     func(s *Spec) { s.Policy.PowerCapW = 0; s.Policy.PartitionCapsW = nil },
		"penalty without cosched":     func(s *Spec) { s.Policy.CoSchedule = false; s.Policy.InterferencePenalty = 2 },
		"penalty below one":           func(s *Spec) { s.Policy.InterferencePenalty = 0.5 },
		"unknown deferral signal":     func(s *Spec) { s.Policy.Deferral.Signal = "moon-phase" },
		"non-positive threshold":      func(s *Spec) { s.Policy.Deferral.Threshold = 0 },
		"unbounded deferral":          func(s *Spec) { s.Policy.Deferral.MaxDefer = 0 },
		"negative check":              func(s *Spec) { s.Policy.Deferral.Check = Duration(-time.Minute) },
		"unknown profile":             func(s *Spec) { s.Clients[0].Jobs.Profile = "disk" },
		"exclusive fraction above 1":  func(s *Spec) { s.Clients[0].Jobs.ExclusiveFraction = 1.5 },
		"negative exclusive fraction": func(s *Spec) { s.Clients[0].Jobs.ExclusiveFraction = -0.1 },
		"deferrable fraction above 1": func(s *Spec) { s.Clients[0].Jobs.DeferrableFraction = 2 },
		"bad deadline slack dist":     func(s *Spec) { s.Clients[0].Jobs.DeadlineSlack.Kind = "zipf" },
		"slack without time limit":    func(s *Spec) { s.Clients[0].Jobs.TimeLimit = Dist{} },
	}
	for name, m := range mutate {
		spec := policyTestSpec()
		m(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
		}
	}
	if err := policyTestSpec().Validate(); err != nil {
		t.Fatalf("baseline policy spec invalid: %v", err)
	}
}

func TestPolicySpecLabel(t *testing.T) {
	cases := []struct {
		p    *PolicySpec
		want string
	}{
		{nil, "none"},
		{&PolicySpec{}, "none"},
		{&PolicySpec{PowerCapW: 100}, "powercap-wait"},
		{&PolicySpec{PowerCapW: 100, CapMode: "freqcap"}, "powercap-freqcap"},
		{&PolicySpec{PartitionCapsW: []PartitionCap{{Name: "batch", CapW: 1}}}, "powercap-wait"},
		{&PolicySpec{CoSchedule: true}, "cosched"},
		{&PolicySpec{Deferral: &DeferralSpec{Signal: SignalCarbon}}, "defer-carbon"},
		{
			&PolicySpec{PowerCapW: 100, CapMode: "freqcap", CoSchedule: true, Deferral: &DeferralSpec{Signal: SignalPrice}},
			"powercap-freqcap+cosched+defer-price",
		},
	}
	for _, tc := range cases {
		if got := tc.p.Label(); got != tc.want {
			t.Errorf("Label(%+v) = %q, want %q", tc.p, got, tc.want)
		}
	}
}

// TestGeneratorPolicyFields: the new draw steps sample profiles,
// exclusivity, and deferral deadlines, and a fraction of 1 means
// always — with no RNG draw, so pinning it cannot shift any other
// sampled field.
func TestGeneratorPolicyFields(t *testing.T) {
	spec := policyTestSpec()
	gen, err := NewGenerator(spec, simclock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	subs := drain(t, gen)
	var sawExclusive, sawDeferrable, sawPlain bool
	for i, s := range subs {
		switch s.Client {
		case "hpc":
			if s.Shape.Profile != ProfileCompute {
				t.Fatalf("submission %d profile %q", i, s.Shape.Profile)
			}
		case "interactive":
			if s.Shape.Profile != ProfileMemory {
				t.Fatalf("submission %d profile %q", i, s.Shape.Profile)
			}
			if s.Exclusive || s.Deferrable {
				t.Fatalf("interactive submission %d drew policy fields with zero fractions", i)
			}
		}
		if s.Exclusive {
			sawExclusive = true
		}
		if s.Deferrable {
			sawDeferrable = true
			if s.Deadline.IsZero() {
				t.Fatalf("deferrable submission %d has no deadline despite a slack dist", i)
			}
			// Deadline = At + TimeLimit + slack, slack in [3600s, 7200s].
			lo := s.At.Add(s.TimeLimit + time.Hour)
			hi := s.At.Add(s.TimeLimit + 2*time.Hour)
			if s.Deadline.Before(lo) || s.Deadline.After(hi) {
				t.Fatalf("submission %d deadline %v outside [%v, %v]", i, s.Deadline, lo, hi)
			}
		} else if !s.Deadline.IsZero() {
			t.Fatalf("non-deferrable submission %d carries a deadline", i)
		}
		if s.Client == "hpc" && !s.Exclusive && !s.Deferrable {
			sawPlain = true
		}
	}
	if !sawExclusive || !sawDeferrable || !sawPlain {
		t.Fatalf("stream missing variety: exclusive=%v deferrable=%v plain=%v",
			sawExclusive, sawDeferrable, sawPlain)
	}

	// Fraction 1 sets the flag without consuming randomness: everything
	// else in the stream must be draw-for-draw identical to fraction 0.
	always := policyTestSpec()
	always.Clients[1].Jobs.ExclusiveFraction = 1
	g2, err := NewGenerator(always, simclock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, g2)
	if len(got) != len(subs) {
		t.Fatalf("fraction-1 stream has %d submissions, want %d", len(got), len(subs))
	}
	for i := range got {
		a, b := subs[i], got[i]
		if b.Client == "interactive" {
			if !b.Exclusive {
				t.Fatalf("submission %d not exclusive under fraction 1", i)
			}
			b.Exclusive = a.Exclusive
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("fraction 1 perturbed submission %d:\n%+v\nvs\n%+v", i, a, b)
		}
	}
}

// TestLogRoundTripPolicyFields: the sp/x/df/dl log keys survive a
// record → read cycle, and submissions without the new fields encode
// without them (old logs stay byte-identical).
func TestLogRoundTripPolicyFields(t *testing.T) {
	spec := policyTestSpec()
	spec.MaxSubmissions = 400
	gen, err := NewGenerator(spec, simclock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, gen)
	var buf bytes.Buffer
	lw, err := NewLogWriter(&buf, spec, simclock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range want {
		if err := lw.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}

	lr, err := NewLogReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, lr)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip lost policy fields (%d in, %d out)", len(want), len(got))
	}

	// A submission with none of the new fields must not emit the new
	// keys: logs from specs predating the policy layer re-record
	// byte-identically.
	var plainBuf bytes.Buffer
	lw2, err := NewLogWriter(&plainBuf, testSpec(), simclock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if err := lw2.Record(Submission{
		At: simclock.Epoch.Add(time.Minute), Client: "hpc", JobName: "j0",
		Tasks: 1, Shape: Sleep("s", time.Minute),
	}); err != nil {
		t.Fatal(err)
	}
	if err := lw2.Flush(); err != nil {
		t.Fatal(err)
	}
	line := plainBuf.String()
	for _, key := range []string{`"sp"`, `"x"`, `"df"`, `"dl"`} {
		if strings.Contains(line, key) {
			t.Fatalf("plain submission emitted policy key %s: %s", key, line)
		}
	}
}
