package workload

import (
	"fmt"
	"testing"
)

// policySpecSkeleton is a minimal valid spec with a hole for the
// fuzzed policy block: the fuzzer explores the policy grammar, not the
// whole spec surface (the rest of the spec has its own validation
// tests).
const policySpecSkeleton = `{
  "version": 1,
  "name": "fuzz",
  "seed": 1,
  "horizon": "1h",
  "max_submissions": 10,
  "cluster": {"partitions": [{"name": "batch", "nodes": 2, "default": true}]},
  "policy": %s,
  "clients": [{
    "name": "c",
    "arrival": {"process": "poisson", "rate_per_hour": 10},
    "jobs": {
      "sleep_fraction": 1,
      "sleep": {"kind": "constant", "value": 60},
      "tasks": {"kind": "constant", "value": 1}
    }
  }]
}`

// FuzzPolicySpec asserts the policy-block grammar's safety contract:
// malformed budgets, thresholds, modes, or deadlines must surface as a
// parse error — never a panic, and never a spec that parses into a
// silently-unbounded or self-contradictory cluster policy. Every block
// that survives ParseSpec must satisfy the invariants the scheduler
// relies on (deferral always bounded, caps positive and attributable,
// penalties never speeding jobs up).
func FuzzPolicySpec(f *testing.F) {
	for _, seed := range []string{
		`null`,
		`{"power_cap_w": 5600, "cap_mode": "freqcap", "co_schedule": true, "deferral": {"signal": "price", "threshold": 0.26, "max_defer": "4h", "check": "10m"}}`,
		`{"power_cap_w": 1200}`,
		`{"partition_caps_w": [{"name": "batch", "cap_w": 900}]}`,
		`{"power_cap_w": -5}`,
		`{"power_cap_w": 1e308, "cap_mode": "wait"}`,
		`{"cap_mode": "wait"}`,
		`{"cap_mode": "turbo", "power_cap_w": 100}`,
		`{"partition_caps_w": [{"name": "gpu", "cap_w": 900}]}`,
		`{"partition_caps_w": [{"name": "batch", "cap_w": 0}]}`,
		`{"partition_caps_w": [{"name": "batch", "cap_w": 10}, {"name": "batch", "cap_w": 20}]}`,
		`{"co_schedule": true, "interference_penalty": 0.5}`,
		`{"interference_penalty": 2}`,
		`{"deferral": {"signal": "price", "threshold": 0.3}}`,
		`{"deferral": {"signal": "moon-phase", "threshold": 0.3, "max_defer": "1h"}}`,
		`{"deferral": {"signal": "carbon", "threshold": -1, "max_defer": "1h"}}`,
		`{"deferral": {"signal": "carbon", "threshold": 0.3, "max_defer": "-1h"}}`,
		`{"deferral": {"signal": "carbon", "threshold": 0.3, "max_defer": "1h", "check": "-5m"}}`,
		`{}`,
		`{"power_cap_w": "not a number"}`,
		`{"deferral": {"max_defer": 17}}`,
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, block []byte) {
		spec, err := ParseSpec([]byte(fmt.Sprintf(policySpecSkeleton, block)))
		if err != nil {
			return // rejected loudly — the contract for malformed input
		}
		p := spec.Policy
		if p == nil {
			return // block was null/absent: the policy layer stays off
		}
		if p.PowerCapW < 0 {
			t.Fatalf("negative cluster cap survived validation: %g", p.PowerCapW)
		}
		if p.CapMode != "" && p.CapMode != "wait" && p.CapMode != "freqcap" {
			t.Fatalf("unknown cap mode survived validation: %q", p.CapMode)
		}
		if p.CapMode != "" && p.PowerCapW == 0 && len(p.PartitionCapsW) == 0 {
			t.Fatal("cap mode without any budget survived validation")
		}
		seen := map[string]bool{}
		for _, e := range p.PartitionCapsW {
			if e.Name != "batch" {
				t.Fatalf("cap for unknown partition %q survived validation", e.Name)
			}
			if seen[e.Name] {
				t.Fatalf("duplicate cap for %q survived validation", e.Name)
			}
			seen[e.Name] = true
			if e.CapW <= 0 {
				t.Fatalf("non-positive partition cap survived validation: %g", e.CapW)
			}
		}
		if p.InterferencePenalty != 0 {
			if !p.CoSchedule {
				t.Fatal("interference penalty without co_schedule survived validation")
			}
			if p.InterferencePenalty < 1 {
				t.Fatalf("penalty %g < 1 survived validation (a shared node is never faster)",
					p.InterferencePenalty)
			}
		}
		if d := p.Deferral; d != nil {
			if d.Signal != SignalPrice && d.Signal != SignalCarbon {
				t.Fatalf("unknown deferral signal survived validation: %q", d.Signal)
			}
			if d.Threshold <= 0 {
				t.Fatalf("non-positive deferral threshold survived validation: %g", d.Threshold)
			}
			if d.MaxDefer <= 0 {
				// The no-starvation property hinges on this bound.
				t.Fatalf("unbounded deferral survived validation: max_defer = %v", d.MaxDefer)
			}
			if d.Check < 0 {
				t.Fatalf("negative re-check cadence survived validation: %v", d.Check)
			}
		}
	})
}
