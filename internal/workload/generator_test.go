package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"ecosched/internal/simclock"
)

func testSpec() Spec {
	return Spec{
		Version: SpecVersion,
		Name:    "gen-test",
		Seed:    42,
		Horizon: Duration(12 * time.Hour),
		Cluster: ClusterSpec{Partitions: []PartitionSpec{
			{Name: "batch", Nodes: 4, Default: true},
			{Name: "debug", Nodes: 2, Policy: "multifactor", MaxTime: Duration(time.Hour)},
		}},
		Clients: []Client{
			{
				Name:    "hpc",
				Arrival: ArrivalSpec{Process: ArrivalPoisson, RatePerHour: 120},
				Jobs: JobSpec{
					Work:          Dist{Kind: DistLogNormal, Mu: 7, Sigma: 0.6},
					Tasks:         Dist{Kind: DistUniform, Min: 1, Max: 8},
					TimeLimit:     Dist{Kind: DistConstant, Value: 1800},
					Partitions:    []PartitionWeight{{Name: "batch", Weight: 3}, {Name: "debug", Weight: 1}},
					OptInFraction: 0.5,
				},
				Users: 4,
			},
			{
				Name:    "interactive",
				Arrival: ArrivalSpec{Process: ArrivalGamma, RatePerHour: 60, Shape: 0.7},
				Windows: []Window{{FromHour: 8, ToHour: 18, Weight: 3}},
				Jobs: JobSpec{
					SleepFraction: 1,
					Sleep:         Dist{Kind: DistExponential, Mean: 45},
				},
			},
		},
	}
}

func drain(t *testing.T, src Source) []Submission {
	t.Helper()
	var out []Submission
	for {
		s, ok, err := src.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, s)
	}
}

// TestGeneratorDeterminism: same spec + seed → identical submission
// sequences, draw for draw.
func TestGeneratorDeterminism(t *testing.T) {
	spec := testSpec()
	g1, err := NewGenerator(spec, simclock.Epoch)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	g2, err := NewGenerator(spec, simclock.Epoch)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	a, b := drain(t, g1), drain(t, g2)
	if len(a) == 0 {
		t.Fatal("generator produced no submissions")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec+seed produced different streams (%d vs %d submissions)", len(a), len(b))
	}
	// A different seed must diverge.
	spec.Seed = 43
	g3, err := NewGenerator(spec, simclock.Epoch)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	if c := drain(t, g3); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestGeneratorStreamShape sanity-checks ordering, horizons, and the
// sampled fields.
func TestGeneratorStreamShape(t *testing.T) {
	spec := testSpec()
	gen, err := NewGenerator(spec, simclock.Epoch)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	subs := drain(t, gen)
	if len(subs) == 0 {
		t.Fatal("no submissions")
	}
	horizon := simclock.Epoch.Add(spec.Horizon.Std())
	var sawOptIn, sawSleep, sawWork bool
	for i, s := range subs {
		if s.Seq != i {
			t.Fatalf("submission %d has seq %d", i, s.Seq)
		}
		if i > 0 && s.At.Before(subs[i-1].At) {
			t.Fatalf("submission %d at %v precedes predecessor at %v", i, s.At, subs[i-1].At)
		}
		if !s.At.Before(horizon) {
			t.Fatalf("submission %d at %v is past the horizon %v", i, s.At, horizon)
		}
		if err := s.Shape.Validate(); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		switch s.Client {
		case "hpc":
			sawWork = true
			if s.Shape.Kind != ShapeFixedWork {
				t.Fatalf("hpc submission %d has shape %q", i, s.Shape.Kind)
			}
			if s.Partition != "batch" && s.Partition != "debug" {
				t.Fatalf("hpc submission %d targets %q", i, s.Partition)
			}
			if s.Tasks < 1 || s.Tasks > 8 {
				t.Fatalf("hpc submission %d has %d tasks", i, s.Tasks)
			}
			if s.TimeLimit != 30*time.Minute {
				t.Fatalf("hpc submission %d has time limit %v", i, s.TimeLimit)
			}
			if s.UserID < 1000 || s.UserID > 1003 {
				t.Fatalf("hpc submission %d has uid %d", i, s.UserID)
			}
			if s.Comment == OptInComment {
				sawOptIn = true
			}
			if !strings.HasPrefix(s.JobName, "hpc-") {
				t.Fatalf("hpc submission %d named %q", i, s.JobName)
			}
		case "interactive":
			sawSleep = true
			if s.Shape.Kind != ShapeSleep {
				t.Fatalf("interactive submission %d has shape %q", i, s.Shape.Kind)
			}
			if s.Partition != "" {
				t.Fatalf("interactive submission %d targets %q, want default", i, s.Partition)
			}
		default:
			t.Fatalf("submission %d from unknown client %q", i, s.Client)
		}
	}
	if !sawWork || !sawSleep || !sawOptIn {
		t.Fatalf("stream missing variety: work=%v sleep=%v optIn=%v", sawWork, sawSleep, sawOptIn)
	}
}

// TestGeneratorClientIndependence: adding a client must not perturb
// an existing client's stream.
func TestGeneratorClientIndependence(t *testing.T) {
	spec := testSpec()
	base, err := NewGenerator(spec, simclock.Epoch)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	only := map[string][]Submission{}
	for _, s := range drain(t, base) {
		only[s.Client] = append(only[s.Client], s)
	}

	grown := testSpec()
	grown.Clients = append(grown.Clients, Client{
		Name:    "extra",
		Arrival: ArrivalSpec{Process: ArrivalWeibull, RatePerHour: 30, Shape: 1.4},
		Jobs:    JobSpec{Work: Dist{Kind: DistConstant, Value: 500}},
	})
	g2, err := NewGenerator(grown, simclock.Epoch)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	after := map[string][]Submission{}
	for _, s := range drain(t, g2) {
		after[s.Client] = append(after[s.Client], s)
	}
	if len(after["extra"]) == 0 {
		t.Fatal("extra client generated nothing")
	}
	for _, name := range []string{"hpc", "interactive"} {
		a, b := only[name], after[name]
		if len(a) != len(b) {
			t.Fatalf("client %q: %d submissions before, %d after adding a client", name, len(a), len(b))
		}
		for i := range a {
			// Seq and JobName shift with the merged ordering; the
			// per-client sampled content must not.
			ca, cb := a[i], b[i]
			ca.Seq, cb.Seq = 0, 0
			if !reflect.DeepEqual(ca, cb) {
				t.Fatalf("client %q submission %d changed: %+v vs %+v", name, i, ca, cb)
			}
		}
	}
}

// TestMaxSubmissionsCap: the global cap stops the stream.
func TestMaxSubmissionsCap(t *testing.T) {
	spec := testSpec()
	spec.MaxSubmissions = 17
	gen, err := NewGenerator(spec, simclock.Epoch)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	if subs := drain(t, gen); len(subs) != 17 {
		t.Fatalf("generated %d submissions, want 17", len(subs))
	}
}

// TestLogRoundTrip: record → read back → identical submissions, and
// the header carries the spec and start instant.
func TestLogRoundTrip(t *testing.T) {
	spec := testSpec()
	spec.MaxSubmissions = 500
	gen, err := NewGenerator(spec, simclock.Epoch)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	var buf bytes.Buffer
	lw, err := NewLogWriter(&buf, spec, simclock.Epoch)
	if err != nil {
		t.Fatalf("NewLogWriter: %v", err)
	}
	want := drain(t, gen)
	for _, s := range want {
		if err := lw.Record(s); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	lr, err := NewLogReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewLogReader: %v", err)
	}
	if !lr.Start().Equal(simclock.Epoch) {
		t.Fatalf("log start = %v, want %v", lr.Start(), simclock.Epoch)
	}
	if !reflect.DeepEqual(lr.Spec(), spec) {
		t.Fatalf("log spec round-trip mismatch:\n got %+v\nwant %+v", lr.Spec(), spec)
	}
	got := drain(t, lr)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("log round-trip: %d submissions in, %d out (or contents differ)", len(want), len(got))
	}
}

// TestLogByteDeterminism: recording the same spec twice produces
// byte-identical logs.
func TestLogByteDeterminism(t *testing.T) {
	record := func() []byte {
		spec := testSpec()
		spec.MaxSubmissions = 300
		gen, err := NewGenerator(spec, simclock.Epoch)
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		var buf bytes.Buffer
		lw, err := NewLogWriter(&buf, spec, simclock.Epoch)
		if err != nil {
			t.Fatalf("NewLogWriter: %v", err)
		}
		for _, s := range drain(t, gen) {
			if err := lw.Record(s); err != nil {
				t.Fatalf("Record: %v", err)
			}
		}
		if err := lw.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		return buf.Bytes()
	}
	if a, b := record(), record(); !bytes.Equal(a, b) {
		t.Fatal("two recordings of the same spec differ byte-wise")
	}
}

// TestLogReaderRejects: version and corruption checks.
func TestLogReaderRejects(t *testing.T) {
	if _, err := NewLogReader(strings.NewReader("")); err == nil {
		t.Error("empty log accepted")
	}
	if _, err := NewLogReader(strings.NewReader(`{"workload_log":99}`)); err == nil {
		t.Error("future log version accepted")
	}
	if _, err := NewLogReader(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header accepted")
	}
}

// TestSpecParse exercises the JSON surface, including bare-seconds
// and string durations.
func TestSpecParse(t *testing.T) {
	const doc = `{
		"version": 1,
		"name": "parse-test",
		"seed": 9,
		"horizon": "2h",
		"cluster": {"partitions": [{"name": "batch", "nodes": 8, "max_time": 3600, "default": true}]},
		"clients": [{
			"name": "c",
			"arrival": {"process": "poisson", "rate_per_hour": 10},
			"jobs": {"work": {"kind": "constant", "value": 100}}
		}]
	}`
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Horizon.Std() != 2*time.Hour {
		t.Errorf("horizon = %v", spec.Horizon.Std())
	}
	if got := spec.Cluster.Partitions[0].MaxTime.Std(); got != time.Hour {
		t.Errorf("max_time = %v, want 1h (bare seconds)", got)
	}
	if spec.TotalNodes() != 8 {
		t.Errorf("TotalNodes = %d", spec.TotalNodes())
	}
}

// TestSpecValidateErrors covers the structural error paths.
func TestSpecValidateErrors(t *testing.T) {
	mutate := []func(*Spec){
		func(s *Spec) { s.Version = 2 },
		func(s *Spec) { s.Horizon = 0 },
		func(s *Spec) { s.MaxSubmissions = -1 },
		func(s *Spec) { s.Cluster.Partitions = nil },
		func(s *Spec) { s.Cluster.Partitions[0].Name = "" },
		func(s *Spec) { s.Cluster.Partitions[1].Name = "batch" },
		func(s *Spec) { s.Cluster.Partitions[0].Nodes = 0 },
		func(s *Spec) { s.Cluster.Partitions[0].Policy = "random" },
		func(s *Spec) { s.Clients = nil },
		func(s *Spec) { s.Clients[0].Name = "" },
		func(s *Spec) { s.Clients[0].Arrival.Process = "pareto" },
		func(s *Spec) { s.Clients[0].Arrival.RatePerHour = 0 },
		func(s *Spec) { s.Clients[1].Arrival.Shape = 0 },
		func(s *Spec) { s.Clients[1].Windows[0].Weight = -1 },
		func(s *Spec) { s.Clients[1].Windows[0].ToHour = 25 },
		func(s *Spec) { s.Clients[0].Jobs.SleepFraction = 1.5 },
		func(s *Spec) { s.Clients[0].Jobs.OptInFraction = -0.5 },
		func(s *Spec) { s.Clients[0].Jobs.Work = Dist{} },
		func(s *Spec) { s.Clients[1].Jobs.Sleep = Dist{} },
		func(s *Spec) { s.Clients[0].Jobs.Partitions[0].Name = "gone" },
		func(s *Spec) { s.Clients[0].Jobs.Partitions[0].Weight = 0 },
		func(s *Spec) { s.Clients[0].Jobs.Work.Kind = "zipf" },
	}
	for i, m := range mutate {
		spec := testSpec()
		m(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("mutation %d: Validate() = nil, want error", i)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
}
