package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// SpecVersion is the current spec/log format version. Parsers reject
// other versions rather than guessing.
const SpecVersion = 1

// Duration is a time.Duration that marshals as a Go duration string
// ("90s", "1h30m") so specs stay human-editable.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler: a duration string, or a
// bare number of seconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("workload: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(data, &secs); err != nil {
		return fmt.Errorf("workload: duration must be a string or seconds number, got %s", data)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Std returns the standard-library duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Spec is a declarative cluster-scale workload: the cluster topology
// to simulate and the client population submitting to it. A (Spec,
// Seed) pair fully determines the generated submission stream.
type Spec struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Seed drives every sampling decision. Each client derives its own
	// RNG from (Seed, client index), so adding a client never perturbs
	// the other clients' streams.
	Seed uint64 `json:"seed"`
	// Horizon bounds generation: no submission is generated at or past
	// start+Horizon (jobs already queued still complete).
	Horizon Duration `json:"horizon"`
	// MaxSubmissions caps the total generated submissions across all
	// clients (0 = unbounded, the horizon is the only stop).
	MaxSubmissions int         `json:"max_submissions,omitempty"`
	Cluster        ClusterSpec `json:"cluster"`
	Clients        []Client    `json:"clients"`
	// Policy selects the cluster energy policies the run schedules
	// under (nil = none: the plain dispatch path).
	Policy *PolicySpec `json:"policy,omitempty"`
}

// ClusterSpec describes the simulated cluster to build.
type ClusterSpec struct {
	Partitions []PartitionSpec `json:"partitions"`
}

// PartitionSpec is one partition and its dedicated nodes.
type PartitionSpec struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	// Policy selects the scheduling policy: "fifo" (default) or
	// "multifactor".
	Policy string `json:"policy,omitempty"`
	// MaxTime caps job time limits in this partition (0 = unlimited).
	MaxTime Duration `json:"max_time,omitempty"`
	// Default marks the partition jobs land in when they name none.
	// When no partition is marked, the first one is the default.
	Default bool `json:"default,omitempty"`
}

// Client is one submitting population: an arrival process, optional
// diurnal modulation, and the distribution of job shapes it submits.
type Client struct {
	Name    string      `json:"name"`
	Arrival ArrivalSpec `json:"arrival"`
	// Windows modulate the arrival rate by hour of day (UTC). Hours
	// not covered by any window run at weight 1.
	Windows []Window `json:"windows,omitempty"`
	Jobs    JobSpec  `json:"jobs"`
	// Users is the number of distinct user ids this client submits as
	// (default 1); fair-share policies see them as separate users.
	Users int `json:"users,omitempty"`
}

// Arrival processes.
const (
	ArrivalPoisson = "poisson"
	ArrivalGamma   = "gamma"
	ArrivalWeibull = "weibull"
)

// ArrivalSpec is the client's interarrival process. RatePerHour is
// the mean arrival rate; Shape tunes the interarrival distribution's
// burstiness for the gamma and weibull processes (1 = exponential;
// <1 bursty, >1 regular).
type ArrivalSpec struct {
	Process     string  `json:"process"`
	RatePerHour float64 `json:"rate_per_hour"`
	Shape       float64 `json:"shape,omitempty"`
}

// Window is one diurnal load window: between FromHour (inclusive) and
// ToHour (exclusive), UTC, the client's arrival rate is multiplied by
// Weight.
type Window struct {
	FromHour int     `json:"from_hour"`
	ToHour   int     `json:"to_hour"`
	Weight   float64 `json:"weight"`
}

// JobSpec describes the jobs a client submits: the shape mix, the
// resource request, and where they go.
type JobSpec struct {
	// SleepFraction is the probability a job is a fixed-duration sleep
	// job (sampled from Sleep) instead of a fixed-work job (sampled
	// from Work). 0 = all fixed-work, 1 = all sleep.
	SleepFraction float64 `json:"sleep_fraction,omitempty"`
	// Work is the FLOP budget distribution in GFLOP (fixed-work jobs).
	Work Dist `json:"work,omitempty"`
	// Sleep is the runtime distribution in seconds (sleep jobs).
	Sleep Dist `json:"sleep,omitempty"`
	// Tasks is the requested-core distribution (samples are rounded
	// and clamped to >= 1). Unset = 1 task.
	Tasks Dist `json:"tasks,omitempty"`
	// ThreadsPerCPU is the hyper-threading request (0 = 1).
	ThreadsPerCPU int `json:"threads_per_cpu,omitempty"`
	// TimeLimit is the requested wall-time distribution in seconds
	// (unset = the cluster default).
	TimeLimit Dist `json:"time_limit,omitempty"`
	// Partitions is the weighted choice of target partition. Unset =
	// the cluster's default partition.
	Partitions []PartitionWeight `json:"partitions,omitempty"`
	// OptInFraction is the probability a job carries the eco plugin's
	// opt-in comment ("chronus").
	OptInFraction float64 `json:"opt_in_fraction,omitempty"`
	// Profile classifies this client's jobs for co-scheduling:
	// "compute" (HPCG-like), "memory" (STREAM-like), or "" (never
	// paired).
	Profile string `json:"profile,omitempty"`
	// ExclusiveFraction is the probability a job demands a whole node
	// (never co-scheduled).
	ExclusiveFraction float64 `json:"exclusive_fraction,omitempty"`
	// DeferrableFraction is the probability a job accepts energy-aware
	// deferral.
	DeferrableFraction float64 `json:"deferrable_fraction,omitempty"`
	// DeadlineSlack is the distribution of extra seconds past
	// submit+time_limit a deferrable job's deadline allows. Requires a
	// time_limit distribution.
	DeadlineSlack Dist `json:"deadline_slack,omitempty"`
}

// PartitionWeight is one weighted partition-choice entry.
type PartitionWeight struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// Deferral signals (DeferralSpec.Signal): the energymarket series the
// threshold is compared against.
const (
	SignalPrice  = "price"  // spot price, EUR/kWh
	SignalCarbon = "carbon" // carbon intensity, gCO2/kWh
)

// PolicySpec selects cluster energy policies for a run: power budgets
// enforced at dispatch, co-scheduling of complementary job profiles,
// and price/carbon-driven deferral. An empty block is rejected — a
// policy spec must select something.
type PolicySpec struct {
	// PowerCapW is the cluster-wide power budget in watts, prorated
	// across partitions by node count (0 = no cluster cap).
	PowerCapW float64 `json:"power_cap_w,omitempty"`
	// PartitionCapsW are explicit per-partition budgets; they override
	// the prorated cluster cap downward.
	PartitionCapsW []PartitionCap `json:"partition_caps_w,omitempty"`
	// CapMode is what happens to a job that does not fit the budget:
	// "wait" (default) or "freqcap" (pin a lower frequency that fits).
	CapMode string `json:"cap_mode,omitempty"`
	// CoSchedule pairs compute-bound and memory-bound jobs on one node.
	CoSchedule bool `json:"co_schedule,omitempty"`
	// InterferencePenalty stretches a co-scheduled secondary's runtime
	// (0 = the simulator default; otherwise >= 1).
	InterferencePenalty float64 `json:"interference_penalty,omitempty"`
	// Deferral holds deferrable jobs while the energy signal is high.
	Deferral *DeferralSpec `json:"deferral,omitempty"`
}

// PartitionCap is one named partition's power budget.
type PartitionCap struct {
	Name string  `json:"name"`
	CapW float64 `json:"cap_w"`
}

// DeferralSpec configures energy-aware deferral. MaxDefer is
// mandatory: without a bound, a persistently high signal would starve
// deferrable jobs.
type DeferralSpec struct {
	Signal    string  `json:"signal"`    // SignalPrice or SignalCarbon
	Threshold float64 `json:"threshold"` // dispatch when signal <= threshold
	// MaxDefer bounds how long past submission a job may be held.
	MaxDefer Duration `json:"max_defer"`
	// Check is the signal re-evaluation cadence (0 = simulator default).
	Check Duration `json:"check,omitempty"`
}

// Label is the policy set's stable display name ("powercap-wait",
// "powercap-freqcap+cosched+defer-price", ... or "none"), used in
// reports and benchmark rows so policy runs compare by name.
func (p *PolicySpec) Label() string {
	if p == nil {
		return "none"
	}
	label := ""
	add := func(s string) {
		if label != "" {
			label += "+"
		}
		label += s
	}
	if p.PowerCapW > 0 || len(p.PartitionCapsW) > 0 {
		mode := p.CapMode
		if mode == "" {
			mode = "wait"
		}
		add("powercap-" + mode)
	}
	if p.CoSchedule {
		add("cosched")
	}
	if p.Deferral != nil {
		add("defer-" + p.Deferral.Signal)
	}
	if label == "" {
		return "none"
	}
	return label
}

// validate checks the policy block against the declared partitions.
func (p *PolicySpec) validate(parts map[string]bool) error {
	capped := p.PowerCapW > 0 || len(p.PartitionCapsW) > 0
	if !capped && !p.CoSchedule && p.Deferral == nil {
		return fmt.Errorf("policy block selects nothing (set power_cap_w, co_schedule, or deferral)")
	}
	if p.PowerCapW < 0 {
		return fmt.Errorf("negative power_cap_w %g", p.PowerCapW)
	}
	seen := map[string]bool{}
	for _, e := range p.PartitionCapsW {
		if !parts[e.Name] {
			return fmt.Errorf("partition cap names unknown partition %q", e.Name)
		}
		if seen[e.Name] {
			return fmt.Errorf("duplicate partition cap %q", e.Name)
		}
		seen[e.Name] = true
		if e.CapW <= 0 {
			return fmt.Errorf("partition %q cap_w must be > 0, got %g", e.Name, e.CapW)
		}
	}
	switch p.CapMode {
	case "", "wait", "freqcap":
	default:
		return fmt.Errorf("unknown cap_mode %q (want wait or freqcap)", p.CapMode)
	}
	if p.CapMode != "" && !capped {
		return fmt.Errorf("cap_mode %q without a power cap", p.CapMode)
	}
	if p.InterferencePenalty != 0 {
		if !p.CoSchedule {
			return fmt.Errorf("interference_penalty without co_schedule")
		}
		if p.InterferencePenalty < 1 {
			return fmt.Errorf("interference_penalty %g must be >= 1", p.InterferencePenalty)
		}
	}
	if d := p.Deferral; d != nil {
		switch d.Signal {
		case SignalPrice, SignalCarbon:
		default:
			return fmt.Errorf("unknown deferral signal %q (want %q or %q)", d.Signal, SignalPrice, SignalCarbon)
		}
		if d.Threshold <= 0 {
			return fmt.Errorf("deferral threshold must be > 0, got %g", d.Threshold)
		}
		if d.MaxDefer <= 0 {
			return fmt.Errorf("deferral needs max_defer > 0 (unbounded deferral starves jobs)")
		}
		if d.Check < 0 {
			return fmt.Errorf("negative deferral check %v", d.Check.Std())
		}
	}
	return nil
}

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("workload: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	spec, err := ParseSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// Validate checks the spec for structural errors.
func (s Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("workload: spec version %d, want %d", s.Version, SpecVersion)
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("workload: spec needs a positive horizon")
	}
	if s.MaxSubmissions < 0 {
		return fmt.Errorf("workload: negative max_submissions")
	}
	if len(s.Cluster.Partitions) == 0 {
		return fmt.Errorf("workload: spec needs at least one partition")
	}
	parts := map[string]bool{}
	for i, p := range s.Cluster.Partitions {
		if p.Name == "" {
			return fmt.Errorf("workload: partition %d has no name", i)
		}
		if parts[p.Name] {
			return fmt.Errorf("workload: duplicate partition %q", p.Name)
		}
		parts[p.Name] = true
		if p.Nodes <= 0 {
			return fmt.Errorf("workload: partition %q needs nodes > 0", p.Name)
		}
		switch p.Policy {
		case "", "fifo", "multifactor":
		default:
			return fmt.Errorf("workload: partition %q: unknown policy %q", p.Name, p.Policy)
		}
	}
	if s.Policy != nil {
		if err := s.Policy.validate(parts); err != nil {
			return fmt.Errorf("workload: policy: %w", err)
		}
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("workload: spec needs at least one client")
	}
	for i, c := range s.Clients {
		if c.Name == "" {
			return fmt.Errorf("workload: client %d has no name", i)
		}
		if err := c.validate(parts); err != nil {
			return fmt.Errorf("workload: client %q: %w", c.Name, err)
		}
	}
	return nil
}

func (c Client) validate(parts map[string]bool) error {
	switch c.Arrival.Process {
	case ArrivalPoisson:
	case ArrivalGamma, ArrivalWeibull:
		if c.Arrival.Shape <= 0 {
			return fmt.Errorf("%s arrival needs shape > 0", c.Arrival.Process)
		}
	default:
		return fmt.Errorf("unknown arrival process %q", c.Arrival.Process)
	}
	if c.Arrival.RatePerHour <= 0 {
		return fmt.Errorf("arrival needs rate_per_hour > 0")
	}
	for _, w := range c.Windows {
		if w.FromHour < 0 || w.ToHour > 24 || w.FromHour >= w.ToHour {
			return fmt.Errorf("bad window [%d, %d)", w.FromHour, w.ToHour)
		}
		if w.Weight <= 0 {
			return fmt.Errorf("window weight must be > 0, got %g", w.Weight)
		}
	}
	if c.Users < 0 {
		return fmt.Errorf("negative users")
	}
	j := c.Jobs
	if j.SleepFraction < 0 || j.SleepFraction > 1 {
		return fmt.Errorf("sleep_fraction %g outside [0, 1]", j.SleepFraction)
	}
	if j.OptInFraction < 0 || j.OptInFraction > 1 {
		return fmt.Errorf("opt_in_fraction %g outside [0, 1]", j.OptInFraction)
	}
	switch j.Profile {
	case "", "compute", "memory":
	default:
		return fmt.Errorf("unknown profile %q (want compute or memory)", j.Profile)
	}
	if j.ExclusiveFraction < 0 || j.ExclusiveFraction > 1 {
		return fmt.Errorf("exclusive_fraction %g outside [0, 1]", j.ExclusiveFraction)
	}
	if j.DeferrableFraction < 0 || j.DeferrableFraction > 1 {
		return fmt.Errorf("deferrable_fraction %g outside [0, 1]", j.DeferrableFraction)
	}
	if !j.DeadlineSlack.IsZero() && j.TimeLimit.IsZero() {
		return fmt.Errorf("deadline_slack needs a time_limit distribution")
	}
	if j.SleepFraction < 1 && j.Work.IsZero() {
		return fmt.Errorf("fixed-work jobs need a work distribution")
	}
	if j.SleepFraction > 0 && j.Sleep.IsZero() {
		return fmt.Errorf("sleep jobs need a sleep distribution")
	}
	for _, d := range []struct {
		name string
		d    Dist
	}{{"work", j.Work}, {"sleep", j.Sleep}, {"tasks", j.Tasks}, {"time_limit", j.TimeLimit}, {"deadline_slack", j.DeadlineSlack}} {
		if err := d.d.Validate(); err != nil {
			return fmt.Errorf("%s: %w", d.name, err)
		}
	}
	for _, pw := range j.Partitions {
		if !parts[pw.Name] {
			return fmt.Errorf("jobs target unknown partition %q", pw.Name)
		}
		if pw.Weight <= 0 {
			return fmt.Errorf("partition %q weight must be > 0", pw.Name)
		}
	}
	return nil
}

// TotalNodes is the cluster size the spec describes.
func (s Spec) TotalNodes() int {
	n := 0
	for _, p := range s.Cluster.Partitions {
		n += p.Nodes
	}
	return n
}
