// Package workload generates and replays cluster-scale job streams
// for the Slurm simulator: declarative multi-client specifications
// (per-client Poisson/Gamma/Weibull interarrival processes, diurnal
// load windows, job-shape distributions), a deterministic generator
// that merges the client streams into one time-ordered submission
// sequence, and a versioned JSONL submission log that records every
// generated submission so a run can be replayed byte-identically.
//
// The package also owns the unified job-shape vocabulary: Shape
// describes what a job's executable does (a fixed FLOP budget or a
// fixed duration), and generated, replayed and hand-built jobs all
// carry the same Shape type end to end — internal/slurm's legacy
// FixedWorkWorkload/SleepWorkload are thin wrappers over it.
//
// All randomness flows through internal/simclock's seeded RNG, so a
// (spec, seed) pair fully determines the submission stream: two
// generators built from the same spec produce identical sequences,
// and a recorded log replays the exact stream that produced it.
package workload

import (
	"fmt"
	"time"

	"ecosched/internal/hw"
	"ecosched/internal/perfmodel"
)

// ShapeKind enumerates what a job's executable does on a node.
type ShapeKind string

// Shape kinds.
const (
	// ShapeFixedWork is a job with a fixed FLOP budget: runtime =
	// work / throughput(config) — the HPCG evaluation jobs.
	ShapeFixedWork ShapeKind = "fixed-work"
	// ShapeSleep runs for a fixed duration regardless of configuration.
	ShapeSleep ShapeKind = "sleep"
)

// Resource profiles: the co-scheduling policy pairs a compute-bound
// job (HPCG-like) with a memory-bound one (STREAM-like) on a node,
// because the pair contends for different resources.
const (
	ProfileCompute = "compute"
	ProfileMemory  = "memory"
)

// Shape is the unified job-shape description shared by generated,
// replayed and hand-built jobs. It satisfies internal/slurm's
// Workload contract (Name + Plan), so a Shape can be registered as a
// workload or attached directly to a job description.
type Shape struct {
	Kind  ShapeKind `json:"kind"`
	Label string    `json:"label,omitempty"`
	// GFLOP is the fixed FLOP budget (ShapeFixedWork only).
	GFLOP float64 `json:"gflop,omitempty"`
	// Duration is the fixed runtime (ShapeSleep only).
	Duration time.Duration `json:"duration,omitempty"`
	// Profile classifies the job's dominant resource (ProfileCompute,
	// ProfileMemory, or empty = unclassified). Co-scheduling pairs
	// complementary profiles on one node; unclassified jobs are never
	// paired.
	Profile string `json:"profile,omitempty"`
}

// FixedWork returns a fixed-FLOP-budget shape.
func FixedWork(label string, gflop float64) Shape {
	return Shape{Kind: ShapeFixedWork, Label: label, GFLOP: gflop}
}

// Sleep returns a fixed-duration shape.
func Sleep(label string, d time.Duration) Shape {
	return Shape{Kind: ShapeSleep, Label: label, Duration: d}
}

// Name implements the slurm Workload contract.
func (s Shape) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return string(s.Kind)
}

// Plan implements the slurm Workload contract: (runtime, sustained
// GFLOPS) for the configuration on the node. A zero GFLOPS is valid
// for non-compute jobs.
func (s Shape) Plan(node *hw.Node, cfg perfmodel.Config) (time.Duration, float64) {
	switch s.Kind {
	case ShapeFixedWork:
		g := node.Calibration().GFLOPS(cfg)
		if g <= 0 {
			return 0, 0
		}
		return time.Duration(s.GFLOP / g * float64(time.Second)), g
	case ShapeSleep:
		return s.Duration, 0
	}
	return 0, 0
}

// Validate reports whether the shape is well-formed.
func (s Shape) Validate() error {
	switch s.Kind {
	case ShapeFixedWork:
		if s.GFLOP <= 0 {
			return fmt.Errorf("workload: fixed-work shape needs gflop > 0, got %g", s.GFLOP)
		}
	case ShapeSleep:
		if s.Duration <= 0 {
			return fmt.Errorf("workload: sleep shape needs duration > 0, got %v", s.Duration)
		}
	default:
		return fmt.Errorf("workload: unknown shape kind %q", s.Kind)
	}
	switch s.Profile {
	case "", ProfileCompute, ProfileMemory:
	default:
		return fmt.Errorf("workload: unknown shape profile %q", s.Profile)
	}
	return nil
}
