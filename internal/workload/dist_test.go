package workload

import (
	"math"
	"testing"
	"time"

	"ecosched/internal/simclock"
)

// TestDistSanity draws a large sample from every distribution family
// and checks sample mean and variance against the analytic moments.
func TestDistSanity(t *testing.T) {
	const n = 200000
	cases := []struct {
		name string
		d    Dist
	}{
		{"constant", Dist{Kind: DistConstant, Value: 42}},
		{"uniform", Dist{Kind: DistUniform, Min: 10, Max: 30}},
		{"exponential", Dist{Kind: DistExponential, Mean: 7.5}},
		{"lognormal", Dist{Kind: DistLogNormal, Mu: 1.2, Sigma: 0.5}},
		{"gamma", Dist{Kind: DistGamma, Shape: 2.5, Scale: 4}},
		{"gamma-sub1", Dist{Kind: DistGamma, Shape: 0.6, Scale: 3}},
		{"weibull-bursty", Dist{Kind: DistWeibull, Shape: 0.8, Scale: 5}},
		{"weibull-regular", Dist{Kind: DistWeibull, Shape: 2, Scale: 5}},
	}
	for i, c := range cases {
		c := c
		seed := uint64(1000 + i)
		t.Run(c.name, func(t *testing.T) {
			if err := c.d.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			r := simclock.NewRNG(seed)
			var sum, sumSq float64
			for j := 0; j < n; j++ {
				v := c.d.Sample(r)
				if v < 0 {
					t.Fatalf("sample %d negative: %g", j, v)
				}
				sum += v
				sumSq += v * v
			}
			mean := sum / n
			variance := sumSq/n - mean*mean
			wantMean, wantVar := c.d.Expectation(), c.d.Variance()
			// 3% relative tolerance on the mean (loose enough for the
			// heavy-tailed families at this sample size).
			if tol := 0.03 * math.Max(wantMean, 1e-9); math.Abs(mean-wantMean) > tol {
				t.Errorf("mean = %g, want %g ± %g", mean, wantMean, tol)
			}
			if wantVar == 0 {
				if variance > 1e-9 {
					t.Errorf("variance = %g, want 0", variance)
				}
				return
			}
			// 10% relative tolerance on the variance (second moments
			// converge slower, especially lognormal).
			if tol := 0.10 * wantVar; math.Abs(variance-wantVar) > tol {
				t.Errorf("variance = %g, want %g ± %g", variance, wantVar, tol)
			}
		})
	}
}

// TestArrivalProcessMeans checks that the generator's arrival
// processes hit the requested mean rate: for each process, the mean
// interarrival gap over many submissions must match 3600/rate.
func TestArrivalProcessMeans(t *testing.T) {
	cases := []struct {
		name    string
		arrival ArrivalSpec
	}{
		{"poisson", ArrivalSpec{Process: ArrivalPoisson, RatePerHour: 360}},
		{"gamma", ArrivalSpec{Process: ArrivalGamma, RatePerHour: 360, Shape: 2.5}},
		{"weibull", ArrivalSpec{Process: ArrivalWeibull, RatePerHour: 360, Shape: 0.9}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			spec := Spec{
				Version: SpecVersion,
				Name:    "arrival-" + c.name,
				Seed:    77,
				Horizon: Duration(2000 * time.Hour),
				Cluster: ClusterSpec{Partitions: []PartitionSpec{{Name: "batch", Nodes: 1}}},
				Clients: []Client{{
					Name:    "c",
					Arrival: c.arrival,
					Jobs:    JobSpec{Work: Dist{Kind: DistConstant, Value: 100}},
				}},
				MaxSubmissions: 100000,
			}
			gen, err := NewGenerator(spec, simclock.Epoch)
			if err != nil {
				t.Fatalf("NewGenerator: %v", err)
			}
			var prev = simclock.Epoch
			var sum float64
			n := 0
			for {
				s, ok, err := gen.Next()
				if err != nil {
					t.Fatalf("Next: %v", err)
				}
				if !ok {
					break
				}
				sum += s.At.Sub(prev).Seconds()
				prev = s.At
				n++
			}
			if n != spec.MaxSubmissions {
				t.Fatalf("generated %d submissions, want %d", n, spec.MaxSubmissions)
			}
			mean := sum / float64(n)
			want := 3600 / c.arrival.RatePerHour
			if tol := 0.03 * want; math.Abs(mean-want) > tol {
				t.Errorf("mean interarrival = %gs, want %gs ± %gs", mean, want, tol)
			}
		})
	}
}

// TestDiurnalWindows verifies rate modulation: a 4× window must see
// roughly 4× the arrivals per hour of an unweighted hour.
func TestDiurnalWindows(t *testing.T) {
	spec := Spec{
		Version: SpecVersion,
		Name:    "diurnal",
		Seed:    5,
		Horizon: Duration(200 * 24 * time.Hour),
		Cluster: ClusterSpec{Partitions: []PartitionSpec{{Name: "batch", Nodes: 1}}},
		Clients: []Client{{
			Name:    "c",
			Arrival: ArrivalSpec{Process: ArrivalPoisson, RatePerHour: 60},
			Windows: []Window{{FromHour: 9, ToHour: 17, Weight: 4}},
			Jobs:    JobSpec{Work: Dist{Kind: DistConstant, Value: 1}},
		}},
	}
	gen, err := NewGenerator(spec, simclock.Epoch)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	var peak, offPeak int
	for {
		s, ok, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		h := s.At.UTC().Hour()
		if h >= 9 && h < 17 {
			peak++
		} else {
			offPeak++
		}
	}
	// Peak covers 8 of 24 hours at 4× weight: expected ratio of
	// per-hour rates is 4. Allow 10% (window-edge gaps bias it down a
	// touch: the gap is sampled at the window entry hour).
	perHourPeak := float64(peak) / 8
	perHourOff := float64(offPeak) / 16
	ratio := perHourPeak / perHourOff
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("peak/off-peak per-hour ratio = %.2f, want ≈ 4", ratio)
	}
}

// TestDistValidate exercises the error paths.
func TestDistValidate(t *testing.T) {
	bad := []Dist{
		{Kind: "zipf"},
		{Kind: DistUniform, Min: 5, Max: 1},
		{Kind: DistExponential, Mean: 0},
		{Kind: DistLogNormal, Sigma: -1},
		{Kind: DistGamma, Shape: 0, Scale: 1},
		{Kind: DistWeibull, Shape: 1, Scale: 0},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate() = nil, want error", i, d)
		}
	}
	if err := (Dist{}).Validate(); err != nil {
		t.Errorf("zero Dist: Validate() = %v, want nil", err)
	}
}
