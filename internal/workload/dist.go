package workload

import (
	"fmt"
	"math"

	"ecosched/internal/simclock"
)

// Dist is a declarative scalar distribution, the job-shape vocabulary
// of the spec format: work sizes, sleep durations, task counts and
// time limits are all described as one of these and sampled through
// the seeded simulation RNG.
type Dist struct {
	// Kind selects the family: constant, uniform, exponential,
	// lognormal, gamma or weibull. The zero Dist (empty kind) is
	// "unset" and samples 0 — callers use it for optional fields.
	Kind string `json:"kind,omitempty"`
	// Value is the constant's value.
	Value float64 `json:"value,omitempty"`
	// Min/Max bound the uniform.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// Mean parameterises the exponential.
	Mean float64 `json:"mean,omitempty"`
	// Mu/Sigma parameterise the lognormal (of the underlying normal).
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// Shape/Scale parameterise the gamma and weibull.
	Shape float64 `json:"shape,omitempty"`
	Scale float64 `json:"scale,omitempty"`
}

// Distribution kinds.
const (
	DistConstant    = "constant"
	DistUniform     = "uniform"
	DistExponential = "exponential"
	DistLogNormal   = "lognormal"
	DistGamma       = "gamma"
	DistWeibull     = "weibull"
)

// IsZero reports whether the distribution is unset.
func (d Dist) IsZero() bool { return d.Kind == "" }

// Validate checks the parameters for the declared kind.
func (d Dist) Validate() error {
	switch d.Kind {
	case "":
		return nil
	case DistConstant:
		// Any value is a valid constant.
	case DistUniform:
		if d.Max < d.Min {
			return fmt.Errorf("workload: uniform max %g < min %g", d.Max, d.Min)
		}
	case DistExponential:
		if d.Mean <= 0 {
			return fmt.Errorf("workload: exponential needs mean > 0, got %g", d.Mean)
		}
	case DistLogNormal:
		if d.Sigma < 0 {
			return fmt.Errorf("workload: lognormal needs sigma >= 0, got %g", d.Sigma)
		}
	case DistGamma, DistWeibull:
		if d.Shape <= 0 || d.Scale <= 0 {
			return fmt.Errorf("workload: %s needs shape and scale > 0, got shape=%g scale=%g",
				d.Kind, d.Shape, d.Scale)
		}
	default:
		return fmt.Errorf("workload: unknown distribution kind %q", d.Kind)
	}
	return nil
}

// Sample draws one value. The zero Dist samples 0.
func (d Dist) Sample(r *simclock.RNG) float64 {
	switch d.Kind {
	case DistConstant:
		return d.Value
	case DistUniform:
		return d.Min + (d.Max-d.Min)*r.Float64()
	case DistExponential:
		return Exponential(r, d.Mean)
	case DistLogNormal:
		return LogNormal(r, d.Mu, d.Sigma)
	case DistGamma:
		return Gamma(r, d.Shape, d.Scale)
	case DistWeibull:
		return Weibull(r, d.Shape, d.Scale)
	}
	return 0
}

// Expectation returns the distribution's mean, used by spec
// validation and the distribution-sanity tests.
func (d Dist) Expectation() float64 {
	switch d.Kind {
	case DistConstant:
		return d.Value
	case DistUniform:
		return (d.Min + d.Max) / 2
	case DistExponential:
		return d.Mean
	case DistLogNormal:
		return math.Exp(d.Mu + d.Sigma*d.Sigma/2)
	case DistGamma:
		return d.Shape * d.Scale
	case DistWeibull:
		return d.Scale * math.Gamma(1+1/d.Shape)
	}
	return 0
}

// Variance returns the distribution's variance.
func (d Dist) Variance() float64 {
	switch d.Kind {
	case DistConstant:
		return 0
	case DistUniform:
		w := d.Max - d.Min
		return w * w / 12
	case DistExponential:
		return d.Mean * d.Mean
	case DistLogNormal:
		s2 := d.Sigma * d.Sigma
		return (math.Exp(s2) - 1) * math.Exp(2*d.Mu+s2)
	case DistGamma:
		return d.Shape * d.Scale * d.Scale
	case DistWeibull:
		m := d.Expectation()
		return d.Scale*d.Scale*math.Gamma(1+2/d.Shape) - m*m
	}
	return 0
}

// Exponential samples Exp(mean) by inversion: -mean·ln(1-U).
func Exponential(r *simclock.RNG, mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Weibull samples Weibull(shape k, scale λ) by inversion:
// λ·(-ln(1-U))^(1/k).
func Weibull(r *simclock.RNG, shape, scale float64) float64 {
	return scale * math.Pow(-math.Log(1-r.Float64()), 1/shape)
}

// LogNormal samples exp(N(mu, sigma²)).
func LogNormal(r *simclock.RNG, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Gamma samples Gamma(shape k, scale θ) with the Marsaglia–Tsang
// squeeze method (2000). For k < 1 it uses the boosting identity
// Gamma(k) = Gamma(k+1)·U^(1/k). The rejection loop consumes a
// variable number of RNG draws, which is fine for determinism: the
// draw sequence is still a pure function of the generator state.
func Gamma(r *simclock.RNG, shape, scale float64) float64 {
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return Gamma(r, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}
