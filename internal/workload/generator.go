package workload

import (
	"math"
	"strconv"
	"time"
	"unsafe"

	"ecosched/internal/simclock"
)

// Submission is one generated (or replayed) job submission: when it
// arrives, who submits it, what it asks for, and what its executable
// does. It carries everything a cluster driver needs to build a job
// description, so generated, recorded and replayed runs share one
// vocabulary.
type Submission struct {
	// Seq is the submission's position in the merged stream (0-based).
	Seq int
	// At is the absolute simulated arrival instant.
	At        time.Time
	Client    string
	JobName   string
	Partition string // "" = the cluster's default partition
	Tasks     int
	// ThreadsPerCPU is the hyper-threading request (0 = 1).
	ThreadsPerCPU int
	UserID        uint32
	// Comment carries the eco plugin's opt-in marker when set.
	Comment   string
	TimeLimit time.Duration // 0 = cluster default
	Shape     Shape
	// Exclusive jobs demand a whole node and are never co-scheduled.
	Exclusive bool
	// Deferrable jobs accept energy-aware deferral.
	Deferrable bool
	// Deadline is the latest acceptable completion instant (zero =
	// none); only set for deferrable jobs with a deadline_slack dist.
	Deadline time.Time
}

// Source is a stream of time-ordered submissions: the generator for
// fresh runs, the log reader for replays.
type Source interface {
	// Next returns the next submission. ok reports whether one was
	// produced; err is only non-nil for corrupt replay logs.
	Next() (s Submission, ok bool, err error)
}

// IntoSource is an optional Source refinement: NextInto fills the
// caller's record in place instead of returning it by value. Pump
// loops that reuse one Submission per pull avoid a large struct copy
// per submission; the Generator implements it.
type IntoSource interface {
	NextInto(s *Submission) (ok bool, err error)
}

// OptInComment is the eco plugin's submission opt-in marker,
// duplicated here (internal/ecoplugin imports internal/slurm, which
// imports this package) and cross-checked by a test.
const OptInComment = "chronus"

// Generator merges the spec's client streams into one time-ordered,
// fully deterministic submission sequence. It is pull-based and O(1)
// in memory: each Next() samples exactly one submission.
type Generator struct {
	spec    Spec
	horizon time.Time
	clients []*clientState
	seq     int
}

type clientState struct {
	spec Client
	rng  *simclock.RNG
	next time.Time
	done bool
	// interMeanS is the flat mean interarrival gap in seconds.
	interMeanS float64
	// scale is the precomputed gamma/weibull scale parameter that
	// yields the requested mean rate at the configured shape.
	scale   float64
	userLo  uint32
	userN   int
	jobSeq  int
	nameBuf []byte
	// sleepName/workName are the client's fixed shape labels,
	// precomputed so the hot sample path does no string concatenation.
	sleepName string
	workName  string
	// nameChunk is the append-only arena job-name strings are sliced
	// from: one heap object per chunk instead of one per name, which
	// at millions of submissions is most of the garbage the collector
	// would otherwise scan.
	nameChunk []byte
}

// nameChunkSize is the arena granularity; a chunk is abandoned (still
// referenced by its names) when the next name would not fit.
const nameChunkSize = 16 << 10

// allocName copies b into the arena and returns it as a string. The
// chunk is never written past its cap and bytes already handed out are
// never rewritten, so the unsafe.String view is immutable.
func (st *clientState) allocName(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(st.nameChunk)+len(b) > cap(st.nameChunk) {
		st.nameChunk = make([]byte, 0, nameChunkSize)
	}
	off := len(st.nameChunk)
	st.nameChunk = append(st.nameChunk, b...)
	return unsafe.String(&st.nameChunk[off], len(b))
}

// NewGenerator builds a generator for the spec, with submissions
// starting after the given simulated start instant (normally
// simclock.Epoch).
func NewGenerator(spec Spec, start time.Time) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{spec: spec, horizon: start.Add(spec.Horizon.Std())}
	for i, cs := range spec.Clients {
		// Each client owns an RNG derived from (seed, client index), so
		// client streams are independent: editing one client's spec
		// never shifts another's samples.
		st := &clientState{
			spec:       cs,
			rng:        simclock.NewRNG(spec.Seed ^ (0x9e3779b97f4a7c15 * uint64(i+1))),
			interMeanS: 3600 / cs.Arrival.RatePerHour,
			userLo:     uint32(1000 * (i + 1)),
			userN:      cs.Users,
			sleepName:  cs.Name + "-sleep",
			workName:   cs.Name + "-work",
		}
		if st.userN <= 0 {
			st.userN = 1
		}
		switch cs.Arrival.Process {
		case ArrivalGamma:
			st.scale = st.interMeanS / cs.Arrival.Shape
		case ArrivalWeibull:
			st.scale = st.interMeanS / math.Gamma(1+1/cs.Arrival.Shape)
		}
		st.next = start.Add(st.gap(start))
		if !st.next.Before(g.horizon) {
			st.done = true
		}
		g.clients = append(g.clients, st)
	}
	return g, nil
}

// Spec returns the generating spec.
func (g *Generator) Spec() Spec { return g.spec }

// Next implements Source: the earliest pending client arrival, ties
// broken by client order.
func (g *Generator) Next() (Submission, bool, error) {
	var s Submission
	ok, err := g.NextInto(&s)
	return s, ok, err
}

// NextInto implements IntoSource: like Next, but filling the caller's
// record in place, sparing the hot pump loop a per-submission copy of
// the ~200-byte Submission.
func (g *Generator) NextInto(s *Submission) (bool, error) {
	if g.spec.MaxSubmissions > 0 && g.seq >= g.spec.MaxSubmissions {
		return false, nil
	}
	var pick *clientState
	for _, st := range g.clients {
		if st.done {
			continue
		}
		if pick == nil || st.next.Before(pick.next) {
			pick = st
		}
	}
	if pick == nil {
		return false, nil
	}
	pick.sampleInto(s, g.seq)
	g.seq++
	// Advance the client to its next arrival.
	pick.next = pick.next.Add(pick.gap(pick.next))
	if !pick.next.Before(g.horizon) {
		pick.done = true
	}
	return true, nil
}

// gap samples the next interarrival gap at the given instant,
// applying the diurnal window weight in effect (rate modulation: a
// 2× window halves the sampled gap).
func (st *clientState) gap(now time.Time) time.Duration {
	var raw float64
	switch st.spec.Arrival.Process {
	case ArrivalGamma:
		raw = Gamma(st.rng, st.spec.Arrival.Shape, st.scale)
	case ArrivalWeibull:
		raw = Weibull(st.rng, st.spec.Arrival.Shape, st.scale)
	default: // poisson
		raw = Exponential(st.rng, st.interMeanS)
	}
	if len(st.spec.Windows) > 0 {
		// Unix() is non-negative here (simulated time starts in 2023),
		// so the modular arithmetic equals now.UTC().Hour() without
		// time.Time's calendar decoding.
		hour := int(now.Unix()%86400) / 3600
		if w := st.weight(hour); w != 1 {
			raw /= w
		}
	}
	if raw < 1e-6 {
		raw = 1e-6 // keep the stream strictly advancing
	}
	return time.Duration(raw * float64(time.Second))
}

func (st *clientState) weight(hour int) float64 {
	for _, w := range st.spec.Windows {
		if hour >= w.FromHour && hour < w.ToHour {
			return w.Weight
		}
	}
	return 1
}

// sampleInto draws one submission into s, overwriting every field. The
// draw order below is fixed: it is part of the log format's determinism
// contract (same spec + seed → byte-identical submission log).
func (st *clientState) sampleInto(s *Submission, seq int) {
	// Field-wise reset: writing through s directly spares the compiler's
	// temp-and-copy of the ~200-byte struct. Every field is assigned on
	// every call — the conditional ones are cleared here first.
	j := &st.spec.Jobs
	s.Seq = seq
	s.At = st.next
	s.Client = st.spec.Name
	s.ThreadsPerCPU = j.ThreadsPerCPU
	s.Partition = ""
	s.Comment = ""
	s.TimeLimit = 0
	s.Exclusive = false
	s.Deferrable = false
	s.Deadline = time.Time{}
	// 1. shape kind
	sleep := false
	switch {
	case j.SleepFraction >= 1:
		sleep = true
	case j.SleepFraction > 0:
		sleep = st.rng.Float64() < j.SleepFraction
	}
	// 2. shape size
	if sleep {
		d := j.Sleep.Sample(st.rng)
		if d < 0.001 {
			d = 0.001
		}
		s.Shape = Sleep(st.sleepName, time.Duration(d*float64(time.Second)))
	} else {
		w := j.Work.Sample(st.rng)
		if w < 0.001 {
			w = 0.001
		}
		s.Shape = FixedWork(st.workName, w)
	}
	s.Shape.Profile = j.Profile
	// 3. tasks
	s.Tasks = 1
	if !j.Tasks.IsZero() {
		if t := int(j.Tasks.Sample(st.rng) + 0.5); t > 1 {
			s.Tasks = t
		}
	}
	// 4. time limit
	if !j.TimeLimit.IsZero() {
		if tl := j.TimeLimit.Sample(st.rng); tl > 0 {
			s.TimeLimit = time.Duration(tl * float64(time.Second))
		}
	}
	// 5. partition
	if len(j.Partitions) > 0 {
		s.Partition = choosePartition(st.rng, j.Partitions)
	}
	// 6. opt-in
	if j.OptInFraction > 0 && st.rng.Float64() < j.OptInFraction {
		s.Comment = OptInComment
	}
	// 7. user
	s.UserID = st.userLo
	if st.userN > 1 {
		s.UserID += uint32(st.rng.Intn(st.userN))
	}
	// 8. exclusivity — like steps 1 and 6, the RNG is consumed only for
	// fractions strictly inside (0, 1), so specs without the new fields
	// keep their original sample streams.
	switch {
	case j.ExclusiveFraction >= 1:
		s.Exclusive = true
	case j.ExclusiveFraction > 0:
		s.Exclusive = st.rng.Float64() < j.ExclusiveFraction
	}
	// 9. deferral + deadline
	switch {
	case j.DeferrableFraction >= 1:
		s.Deferrable = true
	case j.DeferrableFraction > 0:
		s.Deferrable = st.rng.Float64() < j.DeferrableFraction
	}
	if s.Deferrable && !j.DeadlineSlack.IsZero() {
		slack := j.DeadlineSlack.Sample(st.rng)
		if slack < 0 {
			slack = 0
		}
		s.Deadline = s.At.Add(s.TimeLimit + time.Duration(slack*float64(time.Second)))
	}
	st.jobSeq++
	st.nameBuf = append(st.nameBuf[:0], st.spec.Name...)
	st.nameBuf = append(st.nameBuf, '-')
	st.nameBuf = strconv.AppendInt(st.nameBuf, int64(st.jobSeq), 10)
	s.JobName = st.allocName(st.nameBuf)
}

func choosePartition(r *simclock.RNG, parts []PartitionWeight) string {
	total := 0.0
	for _, p := range parts {
		total += p.Weight
	}
	u := r.Float64() * total
	for _, p := range parts {
		u -= p.Weight
		if u < 0 {
			return p.Name
		}
	}
	return parts[len(parts)-1].Name
}
