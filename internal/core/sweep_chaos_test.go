package core

import (
	"errors"
	"testing"
	"time"

	"ecosched/internal/fault"
	"ecosched/internal/perfmodel"
	"ecosched/internal/repository"
)

// withSweepFaults rebuilds the rig's Chronus with its repository and
// blob store wrapped in fault decorators, keeping the rig's raw repo
// handle for assertions against what actually persisted.
func withSweepFaults(t *testing.T, r *rig, inj *fault.Injector) {
	t.Helper()
	deps := r.chronus.deps
	deps.Repo = fault.Repository(deps.Repo, inj)
	deps.Blob = fault.Blob(deps.Blob, inj)
	c, err := New(deps)
	if err != nil {
		t.Fatal(err)
	}
	r.chronus = c
}

// TestPooledSweepTornBatchFault tears a repository batch write in
// half mid-sweep: the sweep must report the failure, the persisted
// rows must still be a contiguous prefix of the sweep order, and no
// sampler may be left running.
func TestPooledSweepTornBatchFault(t *testing.T) {
	configs := sweepConfigs()
	ledger := &samplerLedger{}
	r := newPooledRig(t, 4, ledger, nil)
	inj := fault.New(11)
	withSweepFaults(t, r, inj)
	inj.Use(fault.Rule{Op: fault.OpRepoSaveBenchmarks, Mode: fault.ModeTorn, Fraction: 0.5, Times: 1})

	_, err := r.chronus.Benchmark.Run(configs, 3*time.Second)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want the injected torn-batch fault", err)
	}
	rows := listSweepRows(t, r)
	if len(rows) == len(configs) {
		t.Fatal("torn batch persisted the whole sweep")
	}
	requireContiguousPrefix(t, rows, configs)
	if s, e := ledger.started.Load(), ledger.stopped.Load(); s != e {
		t.Fatalf("%d samplers started but %d stopped", s, e)
	}
}

// TestPooledSweepSaveErrorMidSweep fails the second batch write
// outright: rows committed before the fault survive as a contiguous
// prefix and nothing after the failure is persisted.
func TestPooledSweepSaveErrorMidSweep(t *testing.T) {
	configs := sweepConfigs()
	ledger := &samplerLedger{}
	r := newPooledRig(t, 4, ledger, nil)
	inj := fault.New(11)
	withSweepFaults(t, r, inj)
	inj.Use(fault.Rule{Op: fault.OpRepoSaveBenchmarks, Mode: fault.ModeError, After: 1})

	_, err := r.chronus.Benchmark.Run(configs, 3*time.Second)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want the injected save fault", err)
	}
	requireContiguousPrefix(t, listSweepRows(t, r), configs)
	if s, e := ledger.started.Load(), ledger.stopped.Load(); s != e {
		t.Fatalf("%d samplers started but %d stopped", s, e)
	}
}

// TestPooledSweepBlobFaultKeepsPrefix fails a trace-blob upload
// mid-sweep; the batch containing it must not commit, earlier batches
// must survive contiguously.
func TestPooledSweepBlobFaultKeepsPrefix(t *testing.T) {
	configs := sweepConfigs()
	r := newPooledRig(t, 4, &samplerLedger{}, nil)
	inj := fault.New(11)
	withSweepFaults(t, r, inj)
	inj.Use(fault.Rule{Op: fault.OpBlobPut, Mode: fault.ModeError, After: 2, Times: 1})

	_, err := r.chronus.Benchmark.Run(configs, 3*time.Second)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want the injected blob fault", err)
	}
	rows := listSweepRows(t, r)
	requireContiguousPrefix(t, rows, configs)
	// Every persisted row's trace blob must exist intact — no row may
	// commit with its blob missing.
	for _, row := range rows {
		if _, err := r.blob.Get(row.TraceKey); err != nil {
			t.Fatalf("row %d persisted without its trace blob: %v", row.ID, err)
		}
	}
}

// TestPooledSweepDeterministicUnderLatencyFaults is the regression
// demanded by the chaos issue: identical sweep rows — and the same
// winning configuration — across parallelism 1, 4 and 8 even while
// latency faults (real wall-clock sleeps perturbing goroutine
// scheduling) hit node provisioning and every repository and blob
// access.
func TestPooledSweepDeterministicUnderLatencyFaults(t *testing.T) {
	const opProvision = "provision.node"
	configs := sweepConfigs()

	sweep := func(parallelism int) ([]repository.Benchmark, perfmodel.Config) {
		inj := fault.New(uint64(parallelism), fault.WithSleep(time.Sleep))
		r := newPooledRig(t, parallelism, nil, func(idx int) error {
			return inj.Fail(opProvision)
		})
		withSweepFaults(t, r, inj)
		inj.Use(
			fault.Rule{Op: opProvision, Mode: fault.ModeLatency, Latency: 2 * time.Millisecond, Rate: 0.6},
			fault.Rule{Op: "repo.*", Mode: fault.ModeLatency, Latency: time.Millisecond, Rate: 0.5},
			fault.Rule{Op: "blob.*", Mode: fault.ModeLatency, Latency: time.Millisecond, Rate: 0.5},
		)
		if _, err := r.chronus.Benchmark.Run(configs, 3*time.Second); err != nil {
			t.Fatal(err)
		}
		rows := listSweepRows(t, r)
		if len(rows) != len(configs) {
			t.Fatalf("parallelism %d persisted %d of %d rows", parallelism, len(rows), len(configs))
		}
		var winner perfmodel.Config
		best := -1.0
		for _, row := range rows {
			if eff := row.GFLOPS / row.AvgSystemW; eff > best {
				best = eff
				winner = perfmodel.Config{Cores: row.Cores, FreqKHz: row.FreqKHz, ThreadsPerCore: row.ThreadsPerCore}
			}
		}
		return rows, winner
	}

	rows1, win1 := sweep(1)
	for _, p := range []int{4, 8} {
		rows, win := sweep(p)
		if win != win1 {
			t.Fatalf("winner differs: p=1 %v, p=%d %v", win1, p, win)
		}
		for i := range rows1 {
			if rows[i] != rows1[i] {
				t.Fatalf("row %d differs under latency faults:\n  p=1: %+v\n  p=%d: %+v", i, rows1[i], p, rows[i])
			}
		}
	}
}
