package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ecosched/internal/blob"
	"ecosched/internal/hw"
	"ecosched/internal/ipmi"
	"ecosched/internal/perfmodel"
	"ecosched/internal/procfs"
	"ecosched/internal/repository"
	"ecosched/internal/settings"
	"ecosched/internal/simclock"
	"ecosched/internal/slurm"
	"ecosched/internal/sysinfo"
	"ecosched/internal/telemetry"
)

// samplerLedger counts sampler starts and stops across every node a
// pooled sweep provisions, so tests can prove no sampler is left
// ticking — including after cancellations and worker panics.
type samplerLedger struct {
	started, stopped atomic.Int64
}

func (l *samplerLedger) wrap(s SystemService) SystemService {
	return &ledgeredSystem{inner: s, ledger: l}
}

type ledgeredSystem struct {
	inner  SystemService
	ledger *samplerLedger
}

func (s *ledgeredSystem) StartSampling(interval time.Duration) func() *telemetry.Trace {
	s.ledger.started.Add(1)
	stop := s.inner.StartSampling(interval)
	var done atomic.Bool
	return func() *telemetry.Trace {
		if done.CompareAndSwap(false, true) {
			s.ledger.stopped.Add(1)
		}
		return stop()
	}
}

// newPooledRig is newRig plus a NodeProvisioner, so the benchmark
// sweep takes the worker-pool path. hook, when non-nil, runs before
// each provisioning with the configuration index (used to inject
// cancellations and failures mid-sweep).
func newPooledRig(t *testing.T, parallelism int, ledger *samplerLedger, hook func(idx int) error) *rig {
	t.Helper()
	sim := simclock.New()
	calib := perfmodel.Default()
	node := hw.NewNode(sim, hw.DefaultSpec(), calib, 1)
	conf, err := slurm.ParseConf("JobSubmitPlugins=eco\n")
	if err != nil {
		t.Fatal(err)
	}
	controller, err := slurm.NewController(sim, conf, node)
	if err != nil {
		t.Fatal(err)
	}
	fs := procfs.New(node)

	repo, err := repository.OpenDB(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })

	bmc := ipmi.NewBMC(node)
	bmc.ChmodWorldReadable()
	system, err := NewIPMISystemService(sim, bmc, node, false)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewHPCGRunner(controller, hpcgPath, calib.JobGFLOP)
	if err != nil {
		t.Fatal(err)
	}

	benchConf, err := slurm.ParseConf("ClusterName=bench\n")
	if err != nil {
		t.Fatal(err)
	}
	provision := func(idx int) (BenchNode, error) {
		if hook != nil {
			if err := hook(idx); err != nil {
				return BenchNode{}, err
			}
		}
		bsim := simclock.New()
		bnode := hw.NewNode(bsim, hw.DefaultSpec(), calib, 1+uint64(idx)*0x9e3779b9)
		bbmc := ipmi.NewBMC(bnode)
		bbmc.ChmodWorldReadable()
		bcluster, err := slurm.NewController(bsim, benchConf, bnode)
		if err != nil {
			return BenchNode{}, err
		}
		bsystem, err := NewIPMISystemService(bsim, bbmc, bnode, false)
		if err != nil {
			return BenchNode{}, err
		}
		var sys SystemService = bsystem
		if ledger != nil {
			sys = ledger.wrap(sys)
		}
		return BenchNode{Cluster: bcluster, System: sys}, nil
	}

	chronus, err := New(Deps{
		Repo:        repo,
		Blob:        blob.NewMemory(),
		Settings:    settings.NewMemStore(),
		SysInfo:     sysinfo.NewLscpu(fs),
		FS:          fs,
		Runner:      runner,
		System:      system,
		LocalDir:    t.TempDir(),
		Now:         sim.Now,
		Provision:   provision,
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{sim: sim, node: node, controller: controller, fs: fs,
		repo: repo, blob: chronus.deps.Blob, chronus: chronus}
}

func sweepConfigs() []perfmodel.Config {
	return []perfmodel.Config{
		cfg3(32, 2.5, 1), cfg3(32, 2.2, 1), cfg3(32, 1.5, 1),
		cfg3(30, 2.2, 1), cfg3(28, 2.2, 1), cfg3(16, 2.2, 1),
		cfg3(32, 2.2, 2), cfg3(16, 2.5, 2),
	}
}

// listSweepRows returns the persisted benchmark rows of the rig's only
// system, in id order.
func listSweepRows(t *testing.T, r *rig) []repository.Benchmark {
	t.Helper()
	systems, err := r.repo.ListSystems()
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) == 0 {
		return nil
	}
	rows, err := r.repo.ListBenchmarks(systems[0].ID, "")
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// requireContiguousPrefix asserts the persisted rows are exactly the
// sweep's configurations 0..len(rows)-1, in order, with consecutive
// ids — the pool's durability contract.
func requireContiguousPrefix(t *testing.T, rows []repository.Benchmark, configs []perfmodel.Config) {
	t.Helper()
	if len(rows) > len(configs) {
		t.Fatalf("%d rows persisted for a %d-config sweep", len(rows), len(configs))
	}
	for i, row := range rows {
		got := perfmodel.Config{Cores: row.Cores, FreqKHz: row.FreqKHz, ThreadsPerCore: row.ThreadsPerCore}
		if got != configs[i] {
			t.Fatalf("row %d is %v, want sweep config %v — prefix out of order", i, got, configs[i])
		}
		if i > 0 && row.ID != rows[i-1].ID+1 {
			t.Fatalf("row ids not consecutive: %d then %d", rows[i-1].ID, row.ID)
		}
	}
}

// TestPooledSweepDeterministicAcrossParallelism is the determinism
// guarantee: the same sweep at parallelism 1 and 4 persists
// byte-identical rows (ids, measurements, timestamps) and identical
// trace blobs.
func TestPooledSweepDeterministicAcrossParallelism(t *testing.T) {
	configs := sweepConfigs()
	r1 := newPooledRig(t, 1, nil, nil)
	r4 := newPooledRig(t, 4, nil, nil)
	if _, err := r1.chronus.Benchmark.Run(configs, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := r4.chronus.Benchmark.Run(configs, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	rows1 := listSweepRows(t, r1)
	rows4 := listSweepRows(t, r4)
	if len(rows1) != len(configs) || len(rows4) != len(configs) {
		t.Fatalf("row counts %d / %d, want %d", len(rows1), len(rows4), len(configs))
	}
	for i := range rows1 {
		if rows1[i] != rows4[i] {
			t.Fatalf("row %d differs across parallelism:\n  p=1: %+v\n  p=4: %+v", i, rows1[i], rows4[i])
		}
		b1, err := r1.blob.Get(rows1[i].TraceKey)
		if err != nil {
			t.Fatal(err)
		}
		b4, err := r4.blob.Get(rows4[i].TraceKey)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b4) {
			t.Fatalf("trace blob %q differs across parallelism", rows1[i].TraceKey)
		}
	}
}

// TestPooledSweepCancellation cancels the sweep midway: the call must
// return ctx.Err(), the persisted rows must be a contiguous prefix of
// the sweep, and every sampler that started must have been stopped.
func TestPooledSweepCancellation(t *testing.T) {
	configs := sweepConfigs()
	ledger := &samplerLedger{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := newPooledRig(t, 4, ledger, func(idx int) error {
		if idx == 3 {
			cancel()
		}
		return nil
	})
	_, err := r.chronus.Benchmark.RunContext(ctx, configs, 3*time.Second)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	rows := listSweepRows(t, r)
	if len(rows) == len(configs) {
		t.Fatal("cancellation measured the whole sweep")
	}
	requireContiguousPrefix(t, rows, configs)
	if s, e := ledger.started.Load(), ledger.stopped.Load(); s != e {
		t.Fatalf("%d samplers started but %d stopped — sampler leaked past cancellation", s, e)
	}
}

// TestPooledSweepWorkerPanic injects a panic into one worker: the pool
// must not deadlock, the panic must come back as an error naming the
// configuration, rows below the panicking index must persist, and no
// sampler may be left running.
func TestPooledSweepWorkerPanic(t *testing.T) {
	configs := sweepConfigs()
	ledger := &samplerLedger{}
	r := newPooledRig(t, 4, ledger, func(idx int) error {
		if idx == 2 {
			panic("injected provisioning panic")
		}
		return nil
	})
	_, err := r.chronus.Benchmark.Run(configs, 3*time.Second)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic converted to error", err)
	}
	rows := listSweepRows(t, r)
	requireContiguousPrefix(t, rows, configs)
	if len(rows) > 2 {
		t.Fatalf("%d rows persisted past the panicking configuration", len(rows))
	}
	if s, e := ledger.started.Load(), ledger.stopped.Load(); s != e {
		t.Fatalf("%d samplers started but %d stopped after a worker panic", s, e)
	}
}

// TestPooledSweepLowestErrorWins fails two configurations; the error
// reported must belong to the lowest sweep index, exactly as the
// serial loop would have reported it.
func TestPooledSweepLowestErrorWins(t *testing.T) {
	configs := sweepConfigs()
	r := newPooledRig(t, 4, nil, func(idx int) error {
		if idx == 2 || idx == 5 {
			return fmt.Errorf("node %d failed to boot", idx)
		}
		return nil
	})
	_, err := r.chronus.Benchmark.Run(configs, 3*time.Second)
	if err == nil || !strings.Contains(err.Error(), "node 2 failed to boot") {
		t.Fatalf("err = %v, want the lowest-index failure (node 2)", err)
	}
	rows := listSweepRows(t, r)
	requireContiguousPrefix(t, rows, configs)
	if len(rows) > 2 {
		t.Fatalf("%d rows persisted past the first failing configuration", len(rows))
	}
}

// TestPooledSweepInvalidConfigTruncates matches the serial loop's
// behaviour: an invalid configuration mid-list stops the sweep there,
// keeps the rows before it and returns the validation error.
func TestPooledSweepInvalidConfigTruncates(t *testing.T) {
	configs := sweepConfigs()[:4]
	configs[2] = cfg3(64, 2.5, 1) // more cores than the system has
	r := newPooledRig(t, 4, nil, nil)
	_, err := r.chronus.Benchmark.Run(configs, 3*time.Second)
	if err == nil {
		t.Fatal("invalid configuration accepted")
	}
	rows := listSweepRows(t, r)
	requireContiguousPrefix(t, rows, configs)
	if len(rows) != 2 {
		t.Fatalf("%d rows persisted, want the 2 before the invalid configuration", len(rows))
	}
}

// TestPooledSweepRaceStress drives the pool wide (parallelism 8) over
// a larger sweep; its real value is under `go test -race`.
func TestPooledSweepRaceStress(t *testing.T) {
	var configs []perfmodel.Config
	for cores := 17; cores <= 32; cores++ {
		configs = append(configs, cfg3(cores, 2.2, 1))
	}
	ledger := &samplerLedger{}
	r := newPooledRig(t, 8, ledger, nil)
	if _, err := r.chronus.Benchmark.Run(configs, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	rows := listSweepRows(t, r)
	if len(rows) != len(configs) {
		t.Fatalf("%d rows, want %d", len(rows), len(configs))
	}
	requireContiguousPrefix(t, rows, configs)
	if s, e := ledger.started.Load(), ledger.stopped.Load(); s != int64(len(configs)) || e != int64(len(configs)) {
		t.Fatalf("samplers started/stopped = %d/%d, want %d/%d", s, e, len(configs), len(configs))
	}
}
