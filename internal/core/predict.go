package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"ecosched/internal/ecoplugin"
	"ecosched/internal/metrics"
	"ecosched/internal/optimizer"
	"ecosched/internal/perfmodel"
	"ecosched/internal/repository"
	"ecosched/internal/settings"
	"ecosched/internal/trace"
)

// Simulated decision latencies (what each step of the slurm-config
// path costs in the real deployment the paper describes). The pre-load
// design exists precisely because the cold path — database query plus
// blob download — does not fit Slurm's submit budget; the A2 ablation
// measures this.
const (
	LatencyLocalRead = 2 * time.Millisecond
	LatencyDBQuery   = 150 * time.Millisecond
	LatencyBlobFetch = 400 * time.Millisecond
	LatencyPredict   = 5 * time.Millisecond
)

// PredictService is Chronus function 4, `chronus slurm-config`: given
// the system and binary hashes from job_submit_eco, return the
// energy-efficient configuration (paper §3.1.2, purple arrows). It
// implements ecoplugin.Predictor.
//
// Repeated predictions for the same (system, application) pair are
// answered from an in-memory cache of the decoded optimizer and its
// precomputed best configuration: a hit costs only LatencyLocalRead —
// no file read, no JSON decode, no optimizer sweep. Concurrent cold
// lookups for the same pair are deduplicated (singleflight), and
// `chronus load-model` / `chronus set` invalidate the affected
// entries.
type PredictService struct {
	deps     Deps
	cache    *modelCache
	retry    *retrier
	inflight *inflight
	// AllowColdLoad permits falling back to the database + blob
	// storage when no model is pre-loaded. The A2 ablation enables it
	// to demonstrate the latency-budget violation; production keeps it
	// off.
	AllowColdLoad bool

	// Cached hot-path metric handles (see newWithCache); nil-safe.
	mCacheHit  *metrics.Counter
	mCacheMiss *metrics.Counter
	mLatency   *metrics.BucketedHistogram
}

var _ ecoplugin.Predictor = (*PredictService)(nil)

// Predict implements ecoplugin.Predictor. When req.Budget is set and
// the chosen path's projected latency cannot fit, it refuses up front
// with ecoplugin.ErrBudgetExceeded rather than burning the time — the
// plugin then submits the job unmodified.
func (s *PredictService) Predict(ctx context.Context, req ecoplugin.PredictRequest) (ecoplugin.PredictResult, error) {
	if s.inflight != nil {
		s.inflight.enter()
		defer s.inflight.exit()
	}
	ctx, span := s.deps.Tracer.Start(ctx, spanPredict)
	res, err := s.predict(ctx, req)
	if span != nil {
		span.SetAttr("source", string(res.Source))
		span.SetAttr("sim_latency", res.Latency.String())
		if err == nil {
			span.SetAttr("config", res.Config.String())
		}
	}
	span.End(err)
	if err != nil {
		s.degrade(err)
	}
	return res, err
}

// degrade records a fail-open degradation: the prediction errored, so
// the plugin will submit the job unmodified. Context cancellation is
// the caller abandoning the request, not Chronus degrading, and is not
// counted.
func (s *PredictService) degrade(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	s.deps.Metrics.Counter(metricPredictDegraded).Inc()
	if s.deps.Tracer != nil {
		//lint:ignore ecolint/zeroallocproof degradation telemetry — this runs only after the prediction already failed, never on the budgeted path
		s.deps.Tracer.Event(eventPredictDegraded, map[string]string{"cause": err.Error()})
	}
}

func (s *PredictService) predict(ctx context.Context, req ecoplugin.PredictRequest) (ecoplugin.PredictResult, error) {
	if err := ctx.Err(); err != nil {
		return ecoplugin.PredictResult{}, err
	}
	m := s.deps.Metrics
	key := cacheKey{req.SystemHash, req.BinaryHash}

	if e, ok := s.cache.peek(key); ok {
		s.mCacheHit.Inc()
		if s.deps.Tracer != nil {
			_, hs := s.deps.Tracer.Start(ctx, spanPredictCacheHit)
			hs.End(nil)
		}
		res := ecoplugin.PredictResult{Config: e.best, Latency: LatencyLocalRead, Source: ecoplugin.SourceCache}
		s.mLatency.ObserveDuration(res.Latency)
		return res, nil
	}
	s.mCacheMiss.Inc()

	e, isLoader := s.cache.lookup(key)
	if !isLoader {
		_, ws := s.deps.Tracer.Start(ctx, spanPredictWait)
		//lint:ignore ecolint/seqdet waiter wake order is observationally equivalent: both arms converge on the loader's published entry, and cancellation only affects the cancelled caller — never the journal or replay state
		select {
		case <-ctx.Done():
			ws.End(ctx.Err())
			return ecoplugin.PredictResult{}, ctx.Err()
		case <-e.done:
			ws.End(nil)
		}
	} else {
		best, opt, latency, source, err := s.load(ctx, req)
		s.cache.finish(key, e, best, opt, latency, source, err)
		m.Gauge(metricPredictCacheEntries).Set(float64(s.cache.size()))
	}

	if e.err != nil {
		if errors.Is(e.err, ecoplugin.ErrBudgetExceeded) {
			m.Counter(metricPredictBudgetViolations).Inc()
		}
		return ecoplugin.PredictResult{Latency: e.latency}, e.err
	}
	// Waiters ride the loader's work and share its cost and source.
	res := ecoplugin.PredictResult{Config: e.best, Latency: e.latency, Source: e.source}
	s.mLatency.ObserveDuration(res.Latency)
	return res, nil
}

// load performs one uncached prediction: the pre-loaded local-disk
// path when the model registry knows the pair, the cold database +
// blob path otherwise (A2 only). The returned latency is what the
// path cost, including the portion spent before an error. Each stage
// (model read, database query, blob fetch, optimizer sweep) gets its
// own child span carrying its simulated cost.
func (s *PredictService) load(ctx context.Context, req ecoplugin.PredictRequest) (_ perfmodel.Config, _ optimizer.Optimizer, _ time.Duration, src ecoplugin.PredictSource, err error) {
	var span *trace.Span
	ctx, span = s.deps.Tracer.Start(ctx, spanPredictLoad)
	defer func() {
		if span != nil {
			span.SetAttr("path", string(src))
		}
		span.End(err)
	}()

	latency := LatencyLocalRead // the settings lookup below
	var cfg settings.Settings
	err = s.retry.do(ctx, stageSettingsLoad, func() error {
		var lerr error
		cfg, lerr = s.deps.Settings.Load()
		return lerr
	})
	if err != nil {
		return perfmodel.Config{}, nil, latency, ecoplugin.SourcePreloaded, err
	}
	if local, ok := cfg.FindModelByHash(req.SystemHash, req.BinaryHash); ok {
		projected := latency + LatencyLocalRead + LatencyPredict
		if req.Budget > 0 && projected > req.Budget {
			return perfmodel.Config{}, nil, latency, ecoplugin.SourcePreloaded, fmt.Errorf(
				"core: pre-loaded path needs %v of a %v budget: %w", projected, req.Budget, ecoplugin.ErrBudgetExceeded)
		}
		_, rs := s.deps.Tracer.Start(ctx, spanPredictReadModel)
		read := s.deps.ReadFile
		if read == nil {
			read = os.ReadFile
		}
		var data []byte
		err = s.retry.do(ctx, stageModelRead, func() error {
			var rerr error
			data, rerr = read(local.Path)
			return rerr
		})
		if err != nil {
			rs.End(err)
			return perfmodel.Config{}, nil, latency, ecoplugin.SourcePreloaded, fmt.Errorf("core: pre-loaded model: %w", err)
		}
		latency += LatencyLocalRead
		if rs != nil {
			rs.SetAttr("sim_latency", LatencyLocalRead.String())
			rs.SetAttr("path", local.Path)
		}
		rs.End(nil)
		best, opt, err := s.decodeAndSweepTraced(ctx, data)
		latency += LatencyPredict
		return best, opt, latency, ecoplugin.SourcePreloaded, err
	}

	if !s.AllowColdLoad {
		return perfmodel.Config{}, nil, latency, ecoplugin.SourceCold, fmt.Errorf(
			"core: no pre-loaded model for system %s application %s", req.SystemHash, req.BinaryHash)
	}
	s.deps.Metrics.Counter(metricPredictCold).Inc()

	projected := latency + LatencyDBQuery + LatencyBlobFetch + LatencyPredict
	if req.Budget > 0 && projected > req.Budget {
		return perfmodel.Config{}, nil, latency, ecoplugin.SourceCold, fmt.Errorf(
			"core: cold path needs %v of a %v budget: %w", projected, req.Budget, ecoplugin.ErrBudgetExceeded)
	}

	// Cold path: find the system, its newest model, fetch the blob.
	latency += LatencyDBQuery
	_, dbs := s.deps.Tracer.Start(ctx, spanPredictDBQuery)
	if dbs != nil {
		dbs.SetAttr("sim_latency", LatencyDBQuery.String())
	}
	var systems []repository.System
	err = s.retry.do(ctx, stageDBQuery, func() error {
		var qerr error
		systems, qerr = s.deps.Repo.ListSystems()
		return qerr
	})
	if err != nil {
		dbs.End(err)
		return perfmodel.Config{}, nil, latency, ecoplugin.SourceCold, err
	}
	var sysID int64 = -1
	for _, sys := range systems {
		if sys.ProcHash == req.SystemHash {
			sysID = sys.ID
			break
		}
	}
	if sysID < 0 {
		err = fmt.Errorf("core: unknown system %s", req.SystemHash)
		dbs.End(err)
		return perfmodel.Config{}, nil, latency, ecoplugin.SourceCold, err
	}
	var models []repository.ModelMeta
	err = s.retry.do(ctx, stageDBQuery, func() error {
		var qerr error
		models, qerr = s.deps.Repo.ListModels()
		return qerr
	})
	if err != nil {
		dbs.End(err)
		return perfmodel.Config{}, nil, latency, ecoplugin.SourceCold, err
	}
	var blobKey string
	for _, m := range models {
		if m.SystemID == sysID && m.AppHash == req.BinaryHash {
			blobKey = m.BlobKey // list is id-ordered; keep the newest
		}
	}
	if blobKey == "" {
		err = fmt.Errorf("core: no model for system %s application %s", req.SystemHash, req.BinaryHash)
		dbs.End(err)
		return perfmodel.Config{}, nil, latency, ecoplugin.SourceCold, err
	}
	dbs.End(nil)
	_, bs := s.deps.Tracer.Start(ctx, spanPredictBlobFetch)
	if bs != nil {
		bs.SetAttr("sim_latency", LatencyBlobFetch.String())
		bs.SetAttr("key", blobKey)
	}
	var data []byte
	err = s.retry.do(ctx, stageBlobFetch, func() error {
		var gerr error
		data, gerr = s.deps.Blob.Get(blobKey)
		return gerr
	})
	bs.End(err)
	if err != nil {
		return perfmodel.Config{}, nil, latency, ecoplugin.SourceCold, err
	}
	latency += LatencyBlobFetch
	best, opt, err := s.decodeAndSweepTraced(ctx, data)
	latency += LatencyPredict
	return best, opt, latency, ecoplugin.SourceCold, err
}

// decodeAndSweepTraced wraps decodeAndSweep in the predict.optimize
// span — the stage the decoded-model cache exists to skip.
func (s *PredictService) decodeAndSweepTraced(ctx context.Context, data []byte) (perfmodel.Config, optimizer.Optimizer, error) {
	_, span := s.deps.Tracer.Start(ctx, spanPredictOptimize)
	best, opt, err := decodeAndSweep(data)
	if span != nil {
		span.SetAttr("sim_latency", LatencyPredict.String())
		if err == nil {
			span.SetAttr("config", best.String())
		}
	}
	span.End(err)
	return best, opt, err
}

// decodeAndSweep unmarshals a model file, decodes its optimizer and
// sweeps the configuration space — the expensive work the cache
// exists to amortise.
func decodeAndSweep(data []byte) (perfmodel.Config, optimizer.Optimizer, error) {
	var file LocalModelFile
	if err := json.Unmarshal(data, &file); err != nil {
		return perfmodel.Config{}, nil, fmt.Errorf("core: model file: %w", err)
	}
	opt, err := optimizer.Decode(file.Optimizer)
	if err != nil {
		return perfmodel.Config{}, nil, err
	}
	best, err := opt.BestConfig(file.Space)
	if err != nil {
		return perfmodel.Config{}, nil, err
	}
	return best, opt, nil
}

// ConfigJSONOutput renders the configuration the way `chronus
// slurm-config` prints it for the plugin: a JSON object.
func ConfigJSONOutput(cfg perfmodel.Config) string {
	out, _ := json.Marshal(map[string]int{
		"cores":            cfg.Cores,
		"threads_per_core": cfg.ThreadsPerCore,
		"frequency":        cfg.FreqKHz,
	})
	return string(out)
}

// binaryHash is the application identifier shared with the plugin.
func binaryHash(path string) string { return ecoplugin.BinaryHash(path) }
