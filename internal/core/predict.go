package core

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ecosched/internal/ecoplugin"
	"ecosched/internal/optimizer"
	"ecosched/internal/perfmodel"
)

// Simulated decision latencies (what each step of the slurm-config
// path costs in the real deployment the paper describes). The pre-load
// design exists precisely because the cold path — database query plus
// blob download — does not fit Slurm's submit budget; the A2 ablation
// measures this.
const (
	LatencyLocalRead = 2 * time.Millisecond
	LatencyDBQuery   = 150 * time.Millisecond
	LatencyBlobFetch = 400 * time.Millisecond
	LatencyPredict   = 5 * time.Millisecond
)

// PredictService is Chronus function 4, `chronus slurm-config`: given
// the system and binary hashes from job_submit_eco, return the
// energy-efficient configuration (paper §3.1.2, purple arrows). It
// implements ecoplugin.Predictor.
type PredictService struct {
	deps Deps
	// AllowColdLoad permits falling back to the database + blob
	// storage when no model is pre-loaded. The A2 ablation enables it
	// to demonstrate the latency-budget violation; production keeps it
	// off.
	AllowColdLoad bool
}

var _ ecoplugin.Predictor = (*PredictService)(nil)

// Predict implements ecoplugin.Predictor.
func (s *PredictService) Predict(systemHash, binaryHash string) (perfmodel.Config, time.Duration, error) {
	cfg, err := s.deps.Settings.Load()
	latency := LatencyLocalRead
	if err != nil {
		return perfmodel.Config{}, latency, err
	}
	if local, ok := cfg.FindModelByHash(systemHash, binaryHash); ok {
		data, err := os.ReadFile(local.Path)
		if err != nil {
			return perfmodel.Config{}, latency, fmt.Errorf("core: pre-loaded model: %w", err)
		}
		latency += LatencyLocalRead
		return s.predictFrom(data, latency)
	}

	if !s.AllowColdLoad {
		return perfmodel.Config{}, latency, fmt.Errorf(
			"core: no pre-loaded model for system %s application %s", systemHash, binaryHash)
	}

	// Cold path: find the system, its newest model, fetch the blob.
	latency += LatencyDBQuery
	systems, err := s.deps.Repo.ListSystems()
	if err != nil {
		return perfmodel.Config{}, latency, err
	}
	var sysID int64 = -1
	for _, sys := range systems {
		if sys.ProcHash == systemHash {
			sysID = sys.ID
			break
		}
	}
	if sysID < 0 {
		return perfmodel.Config{}, latency, fmt.Errorf("core: unknown system %s", systemHash)
	}
	models, err := s.deps.Repo.ListModels()
	if err != nil {
		return perfmodel.Config{}, latency, err
	}
	var blobKey string
	for _, m := range models {
		if m.SystemID == sysID && m.AppHash == binaryHash {
			blobKey = m.BlobKey // list is id-ordered; keep the newest
		}
	}
	if blobKey == "" {
		return perfmodel.Config{}, latency, fmt.Errorf("core: no model for system %s application %s", systemHash, binaryHash)
	}
	data, err := s.deps.Blob.Get(blobKey)
	if err != nil {
		return perfmodel.Config{}, latency, err
	}
	latency += LatencyBlobFetch
	return s.predictFrom(data, latency)
}

func (s *PredictService) predictFrom(data []byte, latency time.Duration) (perfmodel.Config, time.Duration, error) {
	var file LocalModelFile
	if err := json.Unmarshal(data, &file); err != nil {
		return perfmodel.Config{}, latency, fmt.Errorf("core: model file: %w", err)
	}
	opt, err := optimizer.Decode(file.Optimizer)
	if err != nil {
		return perfmodel.Config{}, latency, err
	}
	best, err := opt.BestConfig(file.Space)
	latency += LatencyPredict
	if err != nil {
		return perfmodel.Config{}, latency, err
	}
	return best, latency, nil
}

// ConfigJSONOutput renders the configuration the way `chronus
// slurm-config` prints it for the plugin: a JSON object.
func ConfigJSONOutput(cfg perfmodel.Config) string {
	out, _ := json.Marshal(map[string]int{
		"cores":            cfg.Cores,
		"threads_per_core": cfg.ThreadsPerCore,
		"frequency":        cfg.FreqKHz,
	})
	return string(out)
}

// binaryHash is the application identifier shared with the plugin.
func binaryHash(path string) string { return ecoplugin.BinaryHash(path) }
