package core

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"ecosched/internal/optimizer"
	"ecosched/internal/repository"
	"ecosched/internal/settings"
)

// InitModelService is Chronus function 2, `chronus init-model`: load
// the benchmarks of one system/application, train an optimizer,
// upload it to blob storage, and save its metadata (paper §3.1.2,
// blue arrows).
type InitModelService struct {
	deps Deps
	log  *log.Logger
}

// Systems lists stored systems — what the CLI shows when --system is
// not given (paper Figure 8).
func (s *InitModelService) Systems() ([]repository.System, error) {
	return s.deps.Repo.ListSystems()
}

// Run trains a model of the given type for a system and the runner's
// application, returning the stored metadata.
func (s *InitModelService) Run(modelType string, systemID int64) (repository.ModelMeta, error) {
	opt, err := optimizer.New(modelType)
	if err != nil {
		return repository.ModelMeta{}, err
	}
	sys, err := s.deps.Repo.GetSystem(systemID)
	if err != nil {
		return repository.ModelMeta{}, err
	}
	appHash := binaryHashOf(s.deps)
	rows, err := s.deps.Repo.ListBenchmarks(systemID, appHash)
	if err != nil {
		return repository.ModelMeta{}, err
	}
	if len(rows) == 0 {
		return repository.ModelMeta{}, fmt.Errorf("core: no benchmarks for system %d and application %s", systemID, appHash)
	}
	s.log.Printf("initializing model, getting system (%d benchmarks)", len(rows))
	if err := opt.Train(rows); err != nil {
		return repository.ModelMeta{}, err
	}
	cvR2, hasCV, err := optimizer.CrossValidateR2(opt.Name(), rows, 5)
	if err != nil {
		return repository.ModelMeta{}, err
	}
	if hasCV {
		s.log.Printf("training model done (5-fold CV R² = %.4f)", cvR2)
	} else {
		s.log.Printf("training model done")
	}

	payload, err := optimizer.Encode(opt)
	if err != nil {
		return repository.ModelMeta{}, err
	}
	file := LocalModelFile{
		SystemID:   systemID,
		SystemHash: sys.ProcHash,
		AppHash:    appHash,
		Space:      optimizer.SpaceFor(sys),
		Optimizer:  payload,
	}
	blobData, err := json.Marshal(file)
	if err != nil {
		return repository.ModelMeta{}, fmt.Errorf("core: %w", err)
	}
	key := fmt.Sprintf("optimizers/sys%d-%s-%s-%d.json", systemID, appHash, opt.Name(), s.deps.Now().Unix())
	if err := s.deps.Blob.Put(key, blobData); err != nil {
		return repository.ModelMeta{}, err
	}

	meta := repository.ModelMeta{
		SystemID:  systemID,
		AppHash:   appHash,
		Optimizer: opt.Name(),
		BlobKey:   key,
		TrainRows: len(rows),
		CVR2:      cvR2,
		Created:   s.deps.Now(),
	}
	id, err := s.deps.Repo.SaveModel(meta)
	if err != nil {
		return repository.ModelMeta{}, err
	}
	meta.ID = id
	s.log.Printf("model %d (%s) uploaded to %s", id, opt.Name(), key)
	return meta, nil
}

// LocalModelFile is the serialised model as stored in blob storage and
// on the head node's local disk: the optimizer envelope plus
// everything slurm-config needs to answer without the database.
type LocalModelFile struct {
	ModelID    int64           `json:"model_id"`
	SystemID   int64           `json:"system_id"`
	SystemHash string          `json:"system_hash"`
	AppHash    string          `json:"app_hash"`
	Space      optimizer.Space `json:"space"`
	Optimizer  json.RawMessage `json:"optimizer"`
}

// LoadModelService is Chronus function 3, `chronus load-model`:
// download a model from blob storage to the head node's local disk and
// register it in the local settings, so prediction stays inside
// Slurm's submit-time budget (paper §3.1.2, red arrows).
type LoadModelService struct {
	deps  Deps
	log   *log.Logger
	cache *modelCache
}

// Models lists stored model metadata — what the CLI shows when
// --model is not given (paper Figure 9).
func (s *LoadModelService) Models() ([]repository.ModelMeta, error) {
	return s.deps.Repo.ListModels()
}

// Run pre-loads the given model and returns its local registration.
func (s *LoadModelService) Run(modelID int64) (_ settings.LocalModel, err error) {
	_, span := s.deps.Tracer.Start(context.Background(), spanLoadModel)
	if span != nil {
		span.SetAttr("model_id", strconv.FormatInt(modelID, 10))
		defer func() { span.End(err) }()
	}
	meta, err := s.deps.Repo.GetModel(modelID)
	if err != nil {
		return settings.LocalModel{}, err
	}
	data, err := s.deps.Blob.Get(meta.BlobKey)
	if err != nil {
		return settings.LocalModel{}, err
	}
	var file LocalModelFile
	if err := json.Unmarshal(data, &file); err != nil {
		return settings.LocalModel{}, fmt.Errorf("core: model blob %s: %w", meta.BlobKey, err)
	}
	file.ModelID = meta.ID
	data, err = json.Marshal(file)
	if err != nil {
		return settings.LocalModel{}, fmt.Errorf("core: %w", err)
	}

	if err := os.MkdirAll(s.deps.LocalDir, 0o755); err != nil {
		return settings.LocalModel{}, fmt.Errorf("core: %w", err)
	}
	path := filepath.Join(s.deps.LocalDir, fmt.Sprintf("model-%d.json", meta.ID))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return settings.LocalModel{}, fmt.Errorf("core: %w", err)
	}

	local := settings.LocalModel{
		ModelID:    meta.ID,
		SystemID:   meta.SystemID,
		SystemHash: file.SystemHash,
		AppHash:    meta.AppHash,
		Optimizer:  meta.Optimizer,
		Path:       path,
	}
	cfg, err := s.deps.Settings.Load()
	if err != nil {
		return settings.LocalModel{}, err
	}
	cfg.SetModel(local)
	if err := s.deps.Settings.Save(cfg); err != nil {
		return settings.LocalModel{}, err
	}
	// The pair now resolves to a different model; a cached prediction
	// for it would be stale.
	s.cache.invalidate(file.SystemHash, meta.AppHash)
	s.deps.Metrics.Counter(metricModelLoads).Inc()
	s.log.Printf("model %d pre-loaded to %s", meta.ID, path)
	return local, nil
}

func binaryHashOf(deps Deps) string {
	return binaryHash(deps.Runner.BinaryPath())
}
