package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ecosched/internal/ecoplugin"
	"ecosched/internal/metrics"
	"ecosched/internal/settings"
	"ecosched/internal/simclock"
	"ecosched/internal/trace"
)

// testRetrier builds a retrier on a simulated clock whose sleep hook
// advances the clock and records each backoff delay.
func testRetrier(policy RetryPolicy) (*retrier, *simclock.Sim, *[]time.Duration) {
	sim := simclock.New()
	var delays []time.Duration
	r := newRetrier(Deps{
		Retry:   policy,
		Now:     sim.Now,
		Sleep:   func(d time.Duration) { delays = append(delays, d); sim.RunFor(d) },
		Metrics: metrics.New(),
	})
	return r, sim, &delays
}

func TestRetrierRescuesTransientFailure(t *testing.T) {
	r, _, delays := testRetrier(RetryPolicy{Attempts: 3, BaseDelay: 2 * time.Millisecond, Multiplier: 2})
	calls := 0
	err := r.do(context.Background(), stageBlobFetch, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(*delays) != 2 {
		t.Fatalf("backoffs = %v, want 2 sleeps", *delays)
	}
	if (*delays)[1] != 2*(*delays)[0] {
		t.Fatalf("backoff did not double: %v", *delays)
	}
	if got := r.metrics.Counter(metricRetryPrefix + stageBlobFetch).Value(); got != 2 {
		t.Fatalf("retry counter = %d, want 2", got)
	}
}

func TestRetrierExhaustsAttempts(t *testing.T) {
	r, _, _ := testRetrier(RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond})
	calls := 0
	wantErr := errors.New("persistent")
	err := r.do(context.Background(), stageDBQuery, func() error { calls++; return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetrierPermanentErrorsNotRetried(t *testing.T) {
	for _, perm := range []error{
		fmt.Errorf("over: %w", ecoplugin.ErrBudgetExceeded),
		context.Canceled,
	} {
		r, _, _ := testRetrier(RetryPolicy{Attempts: 5, BaseDelay: time.Millisecond})
		calls := 0
		err := r.do(context.Background(), stageModelRead, func() error { calls++; return perm })
		if !errors.Is(err, perm) && !errors.Is(perm, err) {
			t.Fatalf("err = %v, want %v", err, perm)
		}
		if calls != 1 {
			t.Fatalf("%v retried %d times", perm, calls-1)
		}
	}
}

func TestRetrierHonorsCancelledContext(t *testing.T) {
	r, _, _ := testRetrier(RetryPolicy{Attempts: 5, BaseDelay: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := r.do(ctx, stageDBQuery, func() error {
		calls++
		cancel()
		return errors.New("boom")
	})
	if err == nil || calls != 1 {
		t.Fatalf("err = %v after %d calls, want 1 call", err, calls)
	}
}

// TestRetrierStageTimeout: the cumulative per-stage deadline stops the
// retry loop even when attempts remain.
func TestRetrierStageTimeout(t *testing.T) {
	r, _, _ := testRetrier(RetryPolicy{
		Attempts:     10,
		BaseDelay:    10 * time.Millisecond,
		StageTimeout: 15 * time.Millisecond,
	})
	calls := 0
	err := r.do(context.Background(), stageSettingsLoad, func() error { calls++; return errors.New("slow store") })
	if err == nil {
		t.Fatal("nil error")
	}
	// Attempt 1 at t=0, sleep 10ms, attempt 2 at t=10ms, sleep 10ms,
	// attempt 3 at t=20ms >= 15ms deadline → stop.
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (deadline should cut 10 attempts short)", calls)
	}
}

// TestRetrierJitterDeterministic: the jittered backoff schedule is a
// pure function of the policy seed.
func TestRetrierJitterDeterministic(t *testing.T) {
	policy := RetryPolicy{Attempts: 4, BaseDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.2, Seed: 42}
	run := func() []time.Duration {
		r, _, delays := testRetrier(policy)
		r.do(context.Background(), stageBlobFetch, func() error { return errors.New("x") }) //nolint:errcheck
		return *delays
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("delays = %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
		base := 10 * time.Millisecond << i
		lo, hi := time.Duration(float64(base)*0.8), time.Duration(float64(base)*1.2)
		if a[i] < lo || a[i] > hi {
			t.Fatalf("delay %d = %v outside ±20%% of %v", i, a[i], base)
		}
	}
}

func TestRetryPolicyDisabledByDefault(t *testing.T) {
	r := newRetrier(Deps{Now: simclock.New().Now})
	calls := 0
	r.do(context.Background(), stageDBQuery, func() error { calls++; return errors.New("x") }) //nolint:errcheck
	if calls != 1 {
		t.Fatalf("zero policy made %d attempts, want 1", calls)
	}
	var nilRetrier *retrier
	if err := nilRetrier.do(context.Background(), stageDBQuery, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// flakySettings fails its first `failures` Loads, then delegates.
type flakySettings struct {
	inner    settings.Store
	mu       sync.Mutex
	failures int
}

func (f *flakySettings) Load() (settings.Settings, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failures > 0 {
		f.failures--
		return settings.Settings{}, errors.New("transient settings failure")
	}
	return f.inner.Load()
}

func (f *flakySettings) Save(v settings.Settings) error { return f.inner.Save(v) }

// TestPredictRetryRescuesFlakySettings: with a retry policy, a
// settings store that fails twice no longer fails the prediction at
// the settings stage — the load proceeds to the (missing-model) stage
// beyond it.
func TestPredictRetryRescuesFlakySettings(t *testing.T) {
	r := newRig(t)
	deps := r.chronus.deps
	deps.Settings = &flakySettings{inner: deps.Settings, failures: 2}
	deps.Metrics = metrics.New()

	// Without retries the transient failure surfaces directly.
	c1, err := New(deps)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := doPredict(c1.Predict, "sys", "app"); err == nil || !strings.Contains(err.Error(), "transient settings failure") {
		t.Fatalf("no-retry err = %v, want the transient failure", err)
	}

	deps.Settings = &flakySettings{inner: settings.NewMemStore(), failures: 2}
	deps.Retry = DefaultRetryPolicy()
	c2, err := New(deps)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = doPredict(c2.Predict, "sys", "app")
	if err == nil || !strings.Contains(err.Error(), "no pre-loaded model") {
		t.Fatalf("retry err = %v, want to get past settings to the no-model stage", err)
	}
	if got := deps.Metrics.Counter(metricRetryPrefix + stageSettingsLoad).Value(); got != 2 {
		t.Fatalf("settings_load retry counter = %d, want 2", got)
	}
}

// TestPredictDegradedObservability: a failed prediction increments
// chronus.predict.degraded and records the matching trace event with
// its cause — the fail-open telemetry the acceptance criteria demand.
func TestPredictDegradedObservability(t *testing.T) {
	r := newRig(t)
	deps := r.chronus.deps
	deps.Metrics = metrics.New()
	deps.Tracer = trace.New(trace.WithClock(deps.Now))
	c, err := New(deps)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := doPredict(c.Predict, "no-such-system", "no-such-app"); err == nil {
		t.Fatal("predict succeeded with no model anywhere")
	}
	if got := deps.Metrics.Counter(metricPredictDegraded).Value(); got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}
	var found bool
	for _, e := range deps.Tracer.Recent() {
		if e.Name == eventPredictDegraded && strings.Contains(e.Attrs["cause"], "no pre-loaded model") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s event with cause in %+v", eventPredictDegraded, deps.Tracer.Recent())
	}

	// Caller cancellation is not a degradation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.Predict.Predict(ctx, ecoplugin.PredictRequest{SystemHash: "s", BinaryHash: "b"}) //nolint:errcheck
	if got := deps.Metrics.Counter(metricPredictDegraded).Value(); got != 1 {
		t.Fatalf("cancellation counted as degradation (counter = %d)", got)
	}
}

// gateSettings blocks Load until released, so tests can hold a
// prediction in flight.
type gateSettings struct {
	inner   settings.Store
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateSettings) Load() (settings.Settings, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.inner.Load()
}

func (g *gateSettings) Save(v settings.Settings) error { return g.inner.Save(v) }

// TestDrainWaitsForInflightPredictions: Drain must block until every
// in-flight prediction (and any retry backoff inside it) finishes —
// the guarantee Deployment.Close relies on before closing stores.
func TestDrainWaitsForInflightPredictions(t *testing.T) {
	r := newRig(t)
	deps := r.chronus.deps
	gate := &gateSettings{inner: deps.Settings, entered: make(chan struct{}), release: make(chan struct{})}
	deps.Settings = gate
	c, err := New(deps)
	if err != nil {
		t.Fatal(err)
	}

	predictDone := make(chan struct{})
	go func() {
		defer close(predictDone)
		doPredict(c.Predict, "sys", "app") //nolint:errcheck
	}()
	<-gate.entered

	drained := make(chan struct{})
	go func() {
		c.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while a prediction was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate.release)
	<-predictDone
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not return after the prediction finished")
	}
	// Idle drains return immediately.
	c.Drain()
}
