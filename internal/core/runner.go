package core

import (
	"fmt"
	"time"

	"ecosched/internal/hw"
	"ecosched/internal/ipmi"
	"ecosched/internal/perfmodel"
	"ecosched/internal/simclock"
	"ecosched/internal/slurm"
	"ecosched/internal/telemetry"
)

// HPCGRunner is the HPCG Application Runner (paper §3.2, §4.2.3): it
// renders the sbatch file of Listing 6, submits it through Slurm, and
// waits for the accounting record.
type HPCGRunner struct {
	Controller *slurm.Controller
	HPCGPath   string  // path to the xhpcg binary, as the CLI takes it
	jobGFLOP   float64 // job size, kept so Rebind can re-register it
}

// NewHPCGRunner wires the runner and registers the HPCG workload model
// (fixed work, runtime from the node's calibrated throughput) with the
// controller.
func NewHPCGRunner(c *slurm.Controller, hpcgPath string, jobGFLOP float64) (*HPCGRunner, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil controller")
	}
	if hpcgPath == "" {
		return nil, fmt.Errorf("core: empty HPCG path")
	}
	if jobGFLOP <= 0 {
		return nil, fmt.Errorf("core: non-positive job size %v GFLOP", jobGFLOP)
	}
	c.RegisterWorkload(hpcgPath, slurm.FixedWorkWorkload{Label: "hpcg", GFLOP: jobGFLOP})
	return &HPCGRunner{Controller: c, HPCGPath: hpcgPath, jobGFLOP: jobGFLOP}, nil
}

// Rebind implements ClusterRebinder: the same HPCG application and job
// size on a freshly provisioned cluster.
func (r *HPCGRunner) Rebind(c *slurm.Controller) (ApplicationRunner, error) {
	return NewHPCGRunner(c, r.HPCGPath, r.jobGFLOP)
}

// Name implements ApplicationRunner.
func (r *HPCGRunner) Name() string { return "hpcg" }

// BinaryPath implements ApplicationRunner.
func (r *HPCGRunner) BinaryPath() string { return r.HPCGPath }

// Run implements ApplicationRunner.
func (r *HPCGRunner) Run(cfg perfmodel.Config) (RunResult, error) {
	script := slurm.RenderBatchScript(r.HPCGPath, cfg.Cores, cfg.FreqKHz, cfg.ThreadsPerCore)
	job, err := r.Controller.SubmitScript(script)
	if err != nil {
		return RunResult{}, fmt.Errorf("core: hpcg submit: %w", err)
	}
	done, err := r.Controller.WaitFor(job.ID)
	if err != nil {
		return RunResult{}, fmt.Errorf("core: hpcg wait: %w", err)
	}
	if done.State != slurm.StateCompleted {
		return RunResult{}, fmt.Errorf("core: hpcg job %d ended %s (%s)", done.ID, done.State, done.Reason)
	}
	rec, ok := r.Controller.Accounting().Record(done.ID)
	if !ok {
		return RunResult{}, fmt.Errorf("core: hpcg job %d has no accounting record", done.ID)
	}
	return RunResult{GFLOPS: rec.GFLOPS, Runtime: rec.Runtime()}, nil
}

// IPMISystemService is the System Service integration over the BMC
// (paper §3.2): it samples Total_Power, CPU_Power and CPU_Temp while
// a benchmark runs.
type IPMISystemService struct {
	Sim  *simclock.Sim
	Conn *ipmi.Conn
	Node *hw.Node
}

// NewIPMISystemService opens the BMC connection (needing root or the
// paper's `chmod o+r /dev/ipmi0`) and returns the service.
func NewIPMISystemService(sim *simclock.Sim, bmc *ipmi.BMC, node *hw.Node, asRoot bool) (*IPMISystemService, error) {
	conn, err := bmc.Open(asRoot)
	if err != nil {
		return nil, err
	}
	return &IPMISystemService{Sim: sim, Conn: conn, Node: node}, nil
}

// StartSampling implements SystemService.
func (s *IPMISystemService) StartSampling(interval time.Duration) func() *telemetry.Trace {
	trace := &telemetry.Trace{}
	sampler := ipmi.NewSampler(s.Sim, s.Conn, s.Node, trace)
	sampler.Start(interval)
	return func() *telemetry.Trace {
		sampler.Stop()
		return trace
	}
}
