package core

import (
	"fmt"
	"time"

	"ecosched/internal/hw"
	"ecosched/internal/ipmi"
	"ecosched/internal/simclock"
	"ecosched/internal/telemetry"
)

// ClusterPowerService is the paper's second System Service
// implementation (§3.2): "in a multi-node configuration, obtaining
// power data necessitates an API measuring power consumption across
// multiple nodes. Despite the differing execution methods, both
// scenarios aim to achieve the same goal — to provide system power
// measurement." It polls every node's BMC and records the summed
// cluster power in one trace, behind the same SystemService interface
// the single-node IPMI implementation satisfies.
type ClusterPowerService struct {
	sim   *simclock.Sim
	conns []*ipmi.Conn
	nodes []*hw.Node
}

// NewClusterPowerService opens a BMC session per node.
func NewClusterPowerService(sim *simclock.Sim, bmcs []*ipmi.BMC, nodes []*hw.Node, asRoot bool) (*ClusterPowerService, error) {
	if len(bmcs) == 0 || len(bmcs) != len(nodes) {
		return nil, fmt.Errorf("core: cluster power service needs matching BMC and node lists (%d vs %d)",
			len(bmcs), len(nodes))
	}
	s := &ClusterPowerService{sim: sim, nodes: nodes}
	for _, b := range bmcs {
		conn, err := b.Open(asRoot)
		if err != nil {
			return nil, err
		}
		s.conns = append(s.conns, conn)
	}
	return s, nil
}

// StartSampling implements SystemService: each sample sums the
// cluster's Total_Power and CPU_Power and averages CPU temperature.
func (s *ClusterPowerService) StartSampling(interval time.Duration) func() *telemetry.Trace {
	trace := &telemetry.Trace{Name: "cluster"}
	sample := func(now time.Time) {
		var sysW, cpuW, tempSum float64
		for _, conn := range s.conns {
			total, _ := conn.Read(ipmi.SensorTotalPower)
			cpu, _ := conn.Read(ipmi.SensorCPUPower)
			temp, _ := conn.Read(ipmi.SensorCPUTemp)
			sysW += total.Value
			cpuW += cpu.Value
			tempSum += temp.Value
		}
		_ = trace.Append(telemetry.Sample{
			Time:     now,
			SystemW:  sysW,
			CPUW:     cpuW,
			CPUTempC: tempSum / float64(len(s.conns)),
			FreqKHz:  s.nodes[0].CurrentFreqKHz(),
		})
	}
	sample(s.sim.Now())
	ticker := s.sim.Tick(interval, sample)
	return func() *telemetry.Trace {
		ticker.Stop()
		sample(s.sim.Now())
		return trace
	}
}
