package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"ecosched/internal/blob"
	"ecosched/internal/ecoplugin"
	"ecosched/internal/hw"
	"ecosched/internal/ipmi"
	"ecosched/internal/paperdata"
	"ecosched/internal/perfmodel"
	"ecosched/internal/procfs"
	"ecosched/internal/repository"
	"ecosched/internal/settings"
	"ecosched/internal/simclock"
	"ecosched/internal/slurm"
	"ecosched/internal/sysinfo"
)

const hpcgPath = "/opt/hpcg/build/bin/xhpcg"

// doPredict adapts the request/result Predict API to the positional
// shape most tests want.
func doPredict(s *PredictService, sysHash, binHash string) (perfmodel.Config, time.Duration, error) {
	res, err := s.Predict(context.Background(), ecoplugin.PredictRequest{SystemHash: sysHash, BinaryHash: binHash})
	return res.Config, res.Latency, err
}

// rig is a fully wired single-node Chronus deployment on simulated
// hardware.
type rig struct {
	sim        *simclock.Sim
	node       *hw.Node
	controller *slurm.Controller
	fs         procfs.FileReader
	repo       repository.Repository
	blob       blob.Store
	settings   settings.Store
	chronus    *Chronus
	plugin     *ecoplugin.Plugin
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sim := simclock.New()
	calib := perfmodel.Default()
	node := hw.NewNode(sim, hw.DefaultSpec(), calib, 1)
	conf, err := slurm.ParseConf("JobSubmitPlugins=eco\n")
	if err != nil {
		t.Fatal(err)
	}
	controller, err := slurm.NewController(sim, conf, node)
	if err != nil {
		t.Fatal(err)
	}
	fs := procfs.New(node)

	repo, err := repository.OpenDB(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })

	bmc := ipmi.NewBMC(node)
	bmc.ChmodWorldReadable()
	system, err := NewIPMISystemService(sim, bmc, node, false)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewHPCGRunner(controller, hpcgPath, calib.JobGFLOP)
	if err != nil {
		t.Fatal(err)
	}

	st := settings.NewMemStore()
	chronus, err := New(Deps{
		Repo:     repo,
		Blob:     blob.NewMemory(),
		Settings: st,
		SysInfo:  sysinfo.NewLscpu(fs),
		FS:       fs,
		Runner:   runner,
		System:   system,
		LocalDir: t.TempDir(),
		Now:      sim.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	plugin, err := ecoplugin.New(fs, chronus.Predict, st)
	if err != nil {
		t.Fatal(err)
	}
	controller.RegisterPlugin(plugin)

	r := &rig{sim: sim, node: node, controller: controller, fs: fs,
		repo: repo, blob: chronus.deps.Blob, settings: st, chronus: chronus,
		plugin: plugin}
	return r
}

func cfg3(cores int, ghz float64, tpc int) perfmodel.Config {
	return perfmodel.Config{Cores: cores, FreqKHz: int(ghz * 1e6), ThreadsPerCore: tpc}
}

func TestNewValidatesDeps(t *testing.T) {
	if _, err := New(Deps{}); err == nil {
		t.Fatal("empty deps accepted")
	}
}

func TestParseConfigsJSON(t *testing.T) {
	configs, err := ParseConfigsJSON([]byte(`[{"cores":32,"threads_per_core":2,"frequency":2200000}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 1 || configs[0] != cfg3(32, 2.2, 2) {
		t.Fatalf("configs = %+v", configs)
	}
	// threads_per_core defaults to 1.
	configs, err = ParseConfigsJSON([]byte(`[{"cores":4,"frequency":1500000}]`))
	if err != nil || configs[0].ThreadsPerCore != 1 {
		t.Fatalf("configs = %+v, err = %v", configs, err)
	}
	for _, bad := range []string{`[]`, `{`, `[{"cores":0,"frequency":1}]`, `[{"cores":1}]`} {
		if _, err := ParseConfigsJSON([]byte(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestDefaultConfigsEnumerateSystem(t *testing.T) {
	r := newRig(t)
	configs, err := r.chronus.Benchmark.DefaultConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 32*3*2 {
		t.Fatalf("%d default configs, want 192", len(configs))
	}
}

func TestBenchmarkRunPersistsEverything(t *testing.T) {
	r := newRig(t)
	configs := []perfmodel.Config{cfg3(32, 2.5, 1), cfg3(32, 2.2, 1)}
	runID, err := r.chronus.Benchmark.Run(configs, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	systems, _ := r.repo.ListSystems()
	if len(systems) != 1 {
		t.Fatalf("%d systems registered", len(systems))
	}
	sys := systems[0]
	if sys.ProcHash == "" || sys.Cores != 32 {
		t.Fatalf("system record %+v", sys)
	}
	wantHash, _ := ecoplugin.SystemHash(r.fs)
	if sys.ProcHash != wantHash {
		t.Fatal("stored ProcHash disagrees with the plugin's computation")
	}

	runs, _ := r.repo.ListRuns(sys.ID)
	if len(runs) != 1 || runs[0].ID != runID {
		t.Fatalf("runs = %+v", runs)
	}

	rows, _ := r.repo.ListBenchmarks(sys.ID, "")
	if len(rows) != 2 {
		t.Fatalf("%d benchmark rows", len(rows))
	}
	// The standard configuration must land on Figure 1's 9.348 GFLOPS
	// and Table 4's 0.0432 GFLOPS/W within sampling noise.
	std := rows[0]
	if math.Abs(std.GFLOPS-paperdata.Fig1GFLOPS)/paperdata.Fig1GFLOPS > 0.01 {
		t.Fatalf("standard GFLOPS = %.4f", std.GFLOPS)
	}
	if eff := std.GFLOPSPerWatt(); math.Abs(eff-0.043168)/0.043168 > 0.03 {
		t.Fatalf("standard efficiency = %.5f", eff)
	}
	best := rows[1]
	if best.GFLOPSPerWatt() <= std.GFLOPSPerWatt() {
		t.Fatal("2.2 GHz not more efficient than 2.5 GHz")
	}
	if std.RuntimeSeconds < 1000 || std.RuntimeSeconds > 1200 {
		t.Fatalf("standard runtime = %.0f s", std.RuntimeSeconds)
	}
}

func TestBenchmarkRunRejectsBadInput(t *testing.T) {
	r := newRig(t)
	if _, err := r.chronus.Benchmark.Run(nil, 0); err == nil {
		t.Fatal("empty config list accepted")
	}
	if _, err := r.chronus.Benchmark.Run([]perfmodel.Config{cfg3(64, 2.5, 1)}, 0); err == nil {
		t.Fatal("oversized config accepted")
	}
}

// benchmarkSweep runs a small representative sweep through the full
// pipeline.
func benchmarkSweep(t *testing.T, r *rig) int64 {
	t.Helper()
	configs := []perfmodel.Config{
		cfg3(32, 2.5, 1), cfg3(32, 2.2, 1), cfg3(32, 1.5, 1),
		cfg3(30, 2.2, 1), cfg3(28, 2.2, 1), cfg3(16, 2.2, 1),
		cfg3(32, 2.2, 2), cfg3(16, 2.5, 2),
	}
	runID, err := r.chronus.Benchmark.Run(configs, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return runID
}

func TestInitModelTrainsAndUploads(t *testing.T) {
	r := newRig(t)
	benchmarkSweep(t, r)
	systems, _ := r.chronus.InitModel.Systems()
	meta, err := r.chronus.InitModel.Run("brute-force", systems[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if meta.TrainRows != 8 || meta.Optimizer != "brute-force" {
		t.Fatalf("meta = %+v", meta)
	}
	if !r.blob.Exists(meta.BlobKey) {
		t.Fatal("model blob not uploaded")
	}
	models, _ := r.chronus.LoadModel.Models()
	if len(models) != 1 || models[0].ID != meta.ID {
		t.Fatalf("models = %+v", models)
	}
}

func TestInitModelErrors(t *testing.T) {
	r := newRig(t)
	if _, err := r.chronus.InitModel.Run("perceptron", 1); err == nil {
		t.Fatal("unknown model type accepted")
	}
	if _, err := r.chronus.InitModel.Run("brute-force", 42); err == nil {
		t.Fatal("unknown system accepted")
	}
	// System exists but has no benchmarks for this app: register via a
	// benchmark of another "binary" is impossible here, so instead run
	// a sweep then ask for a different optimizer with zero rows is not
	// reachable; the no-benchmarks path needs a fresh system record.
}

func TestLoadModelPreloads(t *testing.T) {
	r := newRig(t)
	benchmarkSweep(t, r)
	systems, _ := r.chronus.InitModel.Systems()
	meta, err := r.chronus.InitModel.Run("brute-force", systems[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	local, err := r.chronus.LoadModel.Run(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if local.SystemHash != systems[0].ProcHash {
		t.Fatal("local model missing the plugin-visible hash")
	}
	if !strings.HasSuffix(local.Path, "model-1.json") {
		t.Fatalf("local path = %q", local.Path)
	}
	cfg, _ := r.settings.Load()
	if _, ok := cfg.FindModelByHash(systems[0].ProcHash, ecoplugin.BinaryHash(hpcgPath)); !ok {
		t.Fatal("settings registry not updated")
	}
}

func TestLoadModelUnknownID(t *testing.T) {
	r := newRig(t)
	if _, err := r.chronus.LoadModel.Run(99); err == nil {
		t.Fatal("unknown model id accepted")
	}
}

func TestPredictFromPreloadedModel(t *testing.T) {
	r := newRig(t)
	benchmarkSweep(t, r)
	systems, _ := r.chronus.InitModel.Systems()
	meta, _ := r.chronus.InitModel.Run("brute-force", systems[0].ID)
	if _, err := r.chronus.LoadModel.Run(meta.ID); err != nil {
		t.Fatal(err)
	}

	sysHash, _ := ecoplugin.SystemHash(r.fs)
	binHash := ecoplugin.BinaryHash(hpcgPath)
	got, latency, err := doPredict(r.chronus.Predict, sysHash, binHash)
	if err != nil {
		t.Fatal(err)
	}
	want := perfmodel.BestConfig()
	if got != want {
		t.Fatalf("predicted %v, want %v (Table 1 best)", got, want)
	}
	if latency > 50*time.Millisecond {
		t.Fatalf("pre-loaded prediction took %v — outside the submit budget rationale", latency)
	}
}

func TestPredictWithoutPreloadErrors(t *testing.T) {
	r := newRig(t)
	benchmarkSweep(t, r)
	sysHash, _ := ecoplugin.SystemHash(r.fs)
	if _, _, err := doPredict(r.chronus.Predict, sysHash, ecoplugin.BinaryHash(hpcgPath)); err == nil {
		t.Fatal("prediction without a pre-loaded model succeeded")
	}
}

func TestPredictColdLoadFallback(t *testing.T) {
	r := newRig(t)
	benchmarkSweep(t, r)
	systems, _ := r.chronus.InitModel.Systems()
	r.chronus.InitModel.Run("brute-force", systems[0].ID)

	r.chronus.Predict.AllowColdLoad = true
	sysHash, _ := ecoplugin.SystemHash(r.fs)
	got, latency, err := doPredict(r.chronus.Predict, sysHash, ecoplugin.BinaryHash(hpcgPath))
	if err != nil {
		t.Fatal(err)
	}
	if got != perfmodel.BestConfig() {
		t.Fatalf("cold prediction = %v", got)
	}
	if latency < LatencyDBQuery+LatencyBlobFetch {
		t.Fatalf("cold latency %v suspiciously low", latency)
	}
}

func TestPredictAppHashMismatch(t *testing.T) {
	r := newRig(t)
	benchmarkSweep(t, r)
	systems, _ := r.chronus.InitModel.Systems()
	meta, _ := r.chronus.InitModel.Run("brute-force", systems[0].ID)
	r.chronus.LoadModel.Run(meta.ID)
	sysHash, _ := ecoplugin.SystemHash(r.fs)
	if _, _, err := doPredict(r.chronus.Predict, sysHash, "some-other-binary"); err == nil {
		t.Fatal("mismatched application hash accepted")
	}
}

func TestPredictUnknownSystem(t *testing.T) {
	r := newRig(t)
	r.chronus.Predict.AllowColdLoad = true
	if _, _, err := doPredict(r.chronus.Predict, "nope", "nope"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestSetService(t *testing.T) {
	r := newRig(t)
	set := r.chronus.Set
	if err := set.SetDatabase("/var/lib/chronus/db"); err != nil {
		t.Fatal(err)
	}
	if err := set.SetBlobStorage("/var/lib/chronus/blobs"); err != nil {
		t.Fatal(err)
	}
	if err := set.SetState("active"); err != nil {
		t.Fatal(err)
	}
	cur, _ := set.Current()
	if cur.DatabasePath != "/var/lib/chronus/db" || cur.State != settings.StateActive {
		t.Fatalf("settings = %+v", cur)
	}
	if err := set.SetState("turbo"); err == nil {
		t.Fatal("invalid state accepted")
	}
	if err := set.SetDatabase(""); err == nil {
		t.Fatal("empty database path accepted")
	}
	if err := set.SetBlobStorage(""); err == nil {
		t.Fatal("empty blob path accepted")
	}
}

func TestConfigJSONOutput(t *testing.T) {
	out := ConfigJSONOutput(perfmodel.BestConfig())
	for _, frag := range []string{`"cores":32`, `"frequency":2200000`, `"threads_per_core":1`} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output %q missing %q", out, frag)
		}
	}
}

// TestFullPaperPipeline is the end-to-end reproduction of the system's
// intended use (paper Figure 4): benchmark → init-model → load-model →
// user submits with `--comment "chronus"` → job_submit_eco rewrites →
// the job runs at the energy-efficient configuration.
func TestFullPaperPipeline(t *testing.T) {
	r := newRig(t)

	// Admin: benchmark a sweep and build + pre-load a model.
	benchmarkSweep(t, r)
	systems, _ := r.chronus.InitModel.Systems()
	meta, err := r.chronus.InitModel.Run("random-forest", systems[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.chronus.LoadModel.Run(meta.ID); err != nil {
		t.Fatal(err)
	}

	// job_submit_eco is already wired to the Chronus predictor by the
	// rig, exactly as JobSubmitPlugins=eco deploys it.
	plugin := r.plugin

	// User: submit the HPCG batch script with the opt-in comment and
	// the standard (wasteful) configuration.
	script := "#!/bin/bash\n" +
		"#SBATCH --nodes=1\n" +
		"#SBATCH --ntasks=32\n" +
		"#SBATCH --cpu-freq=2500000\n" +
		"#SBATCH --comment \"chronus\"\n" +
		"srun --mpi=pmix_v4 --ntasks-per-core=1 " + hpcgPath + "\n"
	job, err := r.controller.SubmitScript(script)
	if err != nil {
		t.Fatal(err)
	}
	done, err := r.controller.WaitFor(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != slurm.StateCompleted {
		t.Fatalf("job %s (%s)", done.State, done.Reason)
	}

	rec, _ := r.controller.Accounting().Record(done.ID)
	// The forest trained on a sparse 8-point sweep may pick 2.2 or
	// 1.5 GHz (their measured efficiencies differ by <2 %); what must
	// hold is that the plugin moved the job off the wasteful standard
	// configuration and within 3 % of the sweep optimum.
	if rec.FreqKHz == 2_500_000 {
		t.Fatalf("plugin left the job at the standard 2.5 GHz")
	}
	if rec.Cores != 32 {
		t.Fatalf("job ran %d cores, every efficient configuration uses 32", rec.Cores)
	}
	eff := rec.GFLOPSPerWatt()
	if eff < 0.97*paperdata.BestRow().GFLOPSPerWatt {
		t.Fatalf("eco job efficiency %.5f, want ≥0.97×%.5f", eff, paperdata.BestRow().GFLOPSPerWatt)
	}
	if plugin.Rewritten != 1 {
		t.Fatalf("plugin rewrote %d jobs", plugin.Rewritten)
	}
}
