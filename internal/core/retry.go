package core

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"ecosched/internal/ecoplugin"
	"ecosched/internal/metrics"
	"ecosched/internal/simclock"
	"ecosched/internal/trace"
)

// RetryPolicy tunes the bounded retry-with-backoff applied to the
// transient stages of a prediction load: settings load, pre-loaded
// model read, database query and blob fetch. These are the stages
// where a second attempt can legitimately succeed (a torn NFS read, a
// momentarily unreachable database). The optimizer sweep and decode
// are NOT retried — deterministic code fails the same way twice — and
// neither is a budget refusal, which is a deliberate decision rather
// than a fault.
//
// The zero value disables retries (one attempt, no backoff), which is
// the seed behavior and what production keeps when no policy is set.
type RetryPolicy struct {
	// Attempts is the total number of tries per stage, including the
	// first; values <= 1 disable retrying.
	Attempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff. Zero means no cap.
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries; values
	// <= 1 keep the delay constant.
	Multiplier float64
	// Jitter is the ± fraction of each delay randomized to decorrelate
	// concurrent retriers (0.2 = ±20%). The jitter source is the seeded
	// deterministic RNG, so a given policy produces one reproducible
	// backoff schedule.
	Jitter float64
	// StageTimeout bounds the cumulative time (per the injected clock)
	// one stage may spend across all its attempts. Once exceeded, the
	// last error is returned instead of another retry. Zero means no
	// per-stage deadline.
	StageTimeout time.Duration
	// Seed drives the jitter RNG.
	Seed uint64
}

// DefaultRetryPolicy is the chaos-suite tuning: three attempts with a
// short, capped, jittered backoff that always fits inside the Slurm
// submit budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Attempts:     3,
		BaseDelay:    2 * time.Millisecond,
		MaxDelay:     20 * time.Millisecond,
		Multiplier:   2,
		Jitter:       0.2,
		StageTimeout: 250 * time.Millisecond,
	}
}

func (p RetryPolicy) enabled() bool { return p.Attempts > 1 }

// Stage labels for retry metrics (metricRetryPrefix + stage) and
// backoff trace events.
const (
	stageSettingsLoad = "settings_load"
	stageModelRead    = "model_read"
	stageDBQuery      = "db_query"
	stageBlobFetch    = "blob_fetch"
)

// retrier executes stage closures under a RetryPolicy. It is shared by
// every prediction in flight, so the jitter RNG sits behind a mutex;
// the draw order still depends only on how many retries happened
// before, never on wall-clock time.
type retrier struct {
	policy  RetryPolicy
	now     func() time.Time
	sleep   func(time.Duration)
	metrics *metrics.Registry
	tracer  *trace.Tracer

	mu  sync.Mutex
	rng *simclock.RNG
}

func newRetrier(deps Deps) *retrier {
	return &retrier{
		policy:  deps.Retry,
		now:     deps.Now,
		sleep:   deps.Sleep,
		metrics: deps.Metrics,
		tracer:  deps.Tracer,
		rng:     simclock.NewRNG(deps.Retry.Seed),
	}
}

// do runs fn up to policy.Attempts times. Retries stop early when the
// context is done, the error is permanent (budget refusal, context
// error), or the stage's cumulative deadline has passed. The last
// error is returned verbatim so callers' errors.Is chains still work.
func (r *retrier) do(ctx context.Context, stage string, fn func() error) error {
	if r == nil || !r.policy.enabled() {
		return fn()
	}
	start := r.now()
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || attempt >= r.policy.Attempts || !retryable(ctx, err) {
			return err
		}
		if r.policy.StageTimeout > 0 && r.now().Sub(start) >= r.policy.StageTimeout {
			return err
		}
		delay := r.backoff(attempt)
		r.metrics.Counter(metricRetryPrefix + stage).Inc()
		if r.tracer != nil {
			r.tracer.Event(eventRetryBackoff, map[string]string{
				"stage":   stage,
				"attempt": strconv.Itoa(attempt),
				"delay":   delay.String(),
				"cause":   err.Error(),
			})
		}
		if r.sleep != nil && delay > 0 {
			r.sleep(delay)
		}
	}
}

// retryable reports whether a failed attempt is worth repeating.
func retryable(ctx context.Context, err error) bool {
	switch {
	case ctx.Err() != nil:
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, ecoplugin.ErrBudgetExceeded):
		return false
	}
	return true
}

// backoff computes the jittered delay before retry number `attempt`.
func (r *retrier) backoff(attempt int) time.Duration {
	d := float64(r.policy.BaseDelay)
	for i := 1; i < attempt; i++ {
		if r.policy.Multiplier > 1 {
			d *= r.policy.Multiplier
		}
	}
	if limit := float64(r.policy.MaxDelay); limit > 0 && d > limit {
		d = limit
	}
	if j := r.policy.Jitter; j > 0 {
		r.mu.Lock()
		u := r.rng.Float64()
		r.mu.Unlock()
		d *= 1 + j*(2*u-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
