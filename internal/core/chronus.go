// Package core is Chronus's application layer — the business logic of
// the paper's four functions (§3.1.2): benchmarking, model building,
// model pre-loading and submit-time prediction, plus the `set`
// configuration command. Following the paper's Clean Architecture
// (§4.1), this package depends only on integration *interfaces*
// (Repository, Optimizer, Application Runner, Local Storage, System
// Service, System Info, File Repository); the concrete implementations
// are injected at the composition root.
package core

import (
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"ecosched/internal/blob"
	"ecosched/internal/metrics"
	"ecosched/internal/perfmodel"
	"ecosched/internal/procfs"
	"ecosched/internal/repository"
	"ecosched/internal/settings"
	"ecosched/internal/sysinfo"
	"ecosched/internal/telemetry"
	"ecosched/internal/trace"
)

// ApplicationRunner is the paper's Application Runner integration
// interface: run the benchmarked application once in a given
// configuration and report what it achieved. The only implementation
// the paper ships is HPCG (see runner.go).
type ApplicationRunner interface {
	Name() string
	// BinaryPath identifies the application for hashing.
	BinaryPath() string
	// Run blocks (in simulated time) until the job finishes.
	Run(cfg perfmodel.Config) (RunResult, error)
}

// RunResult is what one application run reports back.
type RunResult struct {
	GFLOPS  float64
	Runtime time.Duration
}

// SystemService is the paper's System Service integration interface:
// telemetry sampling while benchmarks run. The IPMI implementation
// lives in ipmiservice.go.
type SystemService interface {
	// StartSampling begins collecting a trace at the given interval;
	// the returned stop function ends collection and returns the trace.
	StartSampling(interval time.Duration) (stop func() *telemetry.Trace)
}

// Deps wires the integration interfaces into the application layer.
type Deps struct {
	Repo     repository.Repository
	Blob     blob.Store
	Settings settings.Store
	SysInfo  sysinfo.Provider
	FS       procfs.FileReader // for the plugin-visible system hash
	Runner   ApplicationRunner
	System   SystemService
	LocalDir string           // head-node model directory (paper: /opt/chronus/optimizer)
	Now      func() time.Time // simulated clock
	LogW     io.Writer        // nil = discard
	// Metrics is the optional observability registry; nil disables
	// instrumentation (every metrics type is nil-safe).
	Metrics *metrics.Registry
	// Tracer is the optional decision tracer; nil disables spans (every
	// trace type is nil-safe, so the hot path carries no overhead).
	Tracer *trace.Tracer

	// Retry tunes bounded retry-with-backoff on the transient load
	// stages (settings load, model read, db query, blob fetch). The
	// zero value disables retrying — the seed behavior.
	Retry RetryPolicy
	// Sleep is the backoff hook; nil skips the wait (simulated
	// deployments advance no real time during backoff, and internal/core
	// is a deterministic package — time.Sleep is lint-forbidden here).
	Sleep func(time.Duration)
	// ReadFile reads pre-loaded model files; nil means os.ReadFile.
	// The composition root swaps in a fault-injecting reader so chaos
	// runs can tear model reads without touching the real disk.
	ReadFile func(string) ([]byte, error)

	// Provision, when non-nil, turns the benchmark sweep into a
	// worker-pool fan-out: each configuration is measured on its own
	// independently provisioned node stack (see sweep.go). Nil keeps
	// the paper's serial in-place sweep on Runner/System.
	Provision NodeProvisioner
	// Parallelism caps how many configurations are measured at once
	// when Provision is set; <= 0 means GOMAXPROCS.
	Parallelism int
}

func (d Deps) validate() error {
	switch {
	case d.Repo == nil:
		return fmt.Errorf("core: nil repository")
	case d.Blob == nil:
		return fmt.Errorf("core: nil blob store")
	case d.Settings == nil:
		return fmt.Errorf("core: nil settings store")
	case d.SysInfo == nil:
		return fmt.Errorf("core: nil system info provider")
	case d.FS == nil:
		return fmt.Errorf("core: nil file system")
	case d.Runner == nil:
		return fmt.Errorf("core: nil application runner")
	case d.System == nil:
		return fmt.Errorf("core: nil system service")
	case d.LocalDir == "":
		return fmt.Errorf("core: empty local model directory")
	case d.Now == nil:
		return fmt.Errorf("core: nil clock")
	}
	return nil
}

// Chronus bundles the five services behind one handle, the way the
// CLI's five commands map onto them.
type Chronus struct {
	deps     Deps
	log      *log.Logger
	cache    *modelCache
	inflight *inflight

	Benchmark *BenchmarkService
	InitModel *InitModelService
	LoadModel *LoadModelService
	Predict   *PredictService
	Set       *SetService
}

// Drain blocks until every in-flight prediction — including any
// backoff retries it is sleeping through — has returned, then flushes
// the async trace journal. Deployment teardown calls this first, so
// closing the repository never races a retry loop that would otherwise
// keep poking a half-closed store, and every span those predictions
// emitted is on disk before the journal closes.
func (c *Chronus) Drain() {
	c.inflight.drain()
	c.deps.Tracer.Drain()
}

// inflight counts active predictions so teardown can wait them out.
type inflight struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func newInflight() *inflight {
	i := &inflight{}
	i.cond = sync.NewCond(&i.mu)
	return i
}

func (i *inflight) enter() {
	i.mu.Lock()
	i.n++
	i.mu.Unlock()
}

func (i *inflight) exit() {
	i.mu.Lock()
	i.n--
	if i.n == 0 {
		i.cond.Broadcast()
	}
	i.mu.Unlock()
}

func (i *inflight) drain() {
	i.mu.Lock()
	for i.n > 0 {
		i.cond.Wait()
	}
	i.mu.Unlock()
}

// New validates the wiring and constructs the service bundle.
func New(deps Deps) (*Chronus, error) {
	return newWithCache(deps, newModelCache())
}

// newWithCache builds the bundle around an existing prediction cache,
// so rewires (WithRunner) keep the warmed entries and, crucially, the
// invalidation hooks of the new handle still reach the cache the old
// handle's PredictService serves from.
func newWithCache(deps Deps, cache *modelCache) (*Chronus, error) {
	if err := deps.validate(); err != nil {
		return nil, err
	}
	w := deps.LogW
	if w == nil {
		w = io.Discard
	}
	logger := log.New(w, "chronus ", 0)
	c := &Chronus{deps: deps, log: logger, cache: cache, inflight: newInflight()}
	c.Benchmark = &BenchmarkService{deps: deps, log: logger}
	c.InitModel = &InitModelService{deps: deps, log: logger}
	c.LoadModel = &LoadModelService{deps: deps, log: logger, cache: cache}
	c.Predict = &PredictService{
		deps: deps, cache: cache, retry: newRetrier(deps), inflight: c.inflight,
		// Hot-path handles resolved once: the cache-hit path must not
		// take the registry map lock per submit. All nil-safe when
		// deps.Metrics is nil.
		mCacheHit:  deps.Metrics.Counter(metricPredictCacheHit),
		mCacheMiss: deps.Metrics.Counter(metricPredictCacheMiss),
		mLatency:   deps.Metrics.BucketedHistogram(MetricPredictLatency),
	}
	c.Set = &SetService{deps: deps, cache: cache}
	return c, nil
}
