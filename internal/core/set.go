package core

import (
	"fmt"

	"ecosched/internal/settings"
)

// SetService is `chronus set`: mutate the plugin configuration. The
// paper's three subcommands are database, blob-storage and state
// (Figure 10).
type SetService struct {
	deps  Deps
	cache *modelCache
}

// SetDatabase sets the repository path.
func (s *SetService) SetDatabase(path string) error {
	if path == "" {
		return fmt.Errorf("core: empty database path")
	}
	return s.mutate(func(cfg *settings.Settings) { cfg.DatabasePath = path })
}

// SetBlobStorage sets the blob storage path.
func (s *SetService) SetBlobStorage(path string) error {
	if path == "" {
		return fmt.Errorf("core: empty blob storage path")
	}
	return s.mutate(func(cfg *settings.Settings) { cfg.BlobStoragePath = path })
}

// SetState switches the plugin between active, user and deactivated.
func (s *SetService) SetState(state string) error {
	st := settings.State(state)
	if !st.Valid() {
		return fmt.Errorf("core: invalid state %q (want active, user or deactivated)", state)
	}
	return s.mutate(func(cfg *settings.Settings) { cfg.State = st })
}

// Current returns the loaded settings.
func (s *SetService) Current() (settings.Settings, error) {
	return s.deps.Settings.Load()
}

func (s *SetService) mutate(fn func(*settings.Settings)) error {
	cfg, err := s.deps.Settings.Load()
	if err != nil {
		return err
	}
	fn(&cfg)
	if err := s.deps.Settings.Save(cfg); err != nil {
		return err
	}
	// Settings steer prediction (state, model registry); any change
	// makes every cached answer suspect.
	s.cache.invalidateAll()
	return nil
}
