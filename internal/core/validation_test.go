package core

import (
	"strings"
	"testing"

	"ecosched/internal/blob"
	"ecosched/internal/hw"
	"ecosched/internal/ipmi"
	"ecosched/internal/perfmodel"
	"ecosched/internal/settings"
	"ecosched/internal/simclock"
	"ecosched/internal/slurm"
	"ecosched/internal/sysinfo"
)

// Every Deps field must be individually validated with a message that
// names the missing collaborator.
func TestDepsValidationMessages(t *testing.T) {
	full := newRig(t).chronus.deps

	cases := []struct {
		name string
		mut  func(*Deps)
	}{
		{"repository", func(d *Deps) { d.Repo = nil }},
		{"blob", func(d *Deps) { d.Blob = nil }},
		{"settings", func(d *Deps) { d.Settings = nil }},
		{"system info", func(d *Deps) { d.SysInfo = nil }},
		{"file system", func(d *Deps) { d.FS = nil }},
		{"runner", func(d *Deps) { d.Runner = nil }},
		{"system service", func(d *Deps) { d.System = nil }},
		{"local model directory", func(d *Deps) { d.LocalDir = "" }},
		{"clock", func(d *Deps) { d.Now = nil }},
	}
	for _, tc := range cases {
		deps := full
		tc.mut(&deps)
		_, err := New(deps)
		if err == nil {
			t.Errorf("%s: missing collaborator accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), strings.Fields(tc.name)[0]) {
			t.Errorf("%s: error %q does not name the collaborator", tc.name, err)
		}
	}
	if _, err := New(full); err != nil {
		t.Fatalf("full deps rejected: %v", err)
	}
}

func TestRunnerConstructorsValidate(t *testing.T) {
	sim := simclock.New()
	node := hw.NewNode(sim, hw.DefaultSpec(), perfmodel.Default(), 1)
	c, err := slurm.NewController(sim, slurm.DefaultConf(), node)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHPCGRunner(nil, "/bin/x", 1); err == nil {
		t.Error("nil controller accepted")
	}
	if _, err := NewHPCGRunner(c, "", 1); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := NewHPCGRunner(c, "/bin/x", 0); err == nil {
		t.Error("zero work accepted")
	}
	if _, err := NewStreamRunner(nil, "/bin/x"); err == nil {
		t.Error("stream: nil controller accepted")
	}
	if _, err := NewStreamRunner(c, ""); err == nil {
		t.Error("stream: empty path accepted")
	}
	r, err := NewHPCGRunner(c, "/bin/x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "hpcg" || r.BinaryPath() != "/bin/x" {
		t.Fatalf("runner identity: %s %s", r.Name(), r.BinaryPath())
	}
	s, err := NewStreamRunner(c, "/bin/s")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "stream" || s.BinaryPath() != "/bin/s" {
		t.Fatalf("stream identity: %s %s", s.Name(), s.BinaryPath())
	}
}

// Runner.Run must surface scheduler rejections (e.g. a plugin chain
// that errors) rather than hanging or panicking.
func TestHPCGRunnerSubmitRejection(t *testing.T) {
	sim := simclock.New()
	node := hw.NewNode(sim, hw.DefaultSpec(), perfmodel.Default(), 1)
	conf, _ := slurm.ParseConf("JobSubmitPlugins=eco\n") // plugin never registered
	c, err := slurm.NewController(sim, conf, node)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewHPCGRunner(c, "/bin/x", 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(perfmodel.StandardConfig()); err == nil {
		t.Fatal("submit rejection not surfaced")
	}
}

// Runner.Run must surface a job that fails (time limit) as an error.
func TestHPCGRunnerJobFailure(t *testing.T) {
	sim := simclock.New()
	node := hw.NewNode(sim, hw.DefaultSpec(), perfmodel.Default(), 1)
	conf := slurm.DefaultConf()
	conf.DefaultTimeLimit = 1 // nanosecond — every job times out
	c, err := slurm.NewController(sim, conf, node)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewHPCGRunner(c, "/bin/x", perfmodel.Default().JobGFLOP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(perfmodel.StandardConfig()); err == nil {
		t.Fatal("failed job not surfaced")
	}
}

func TestIPMISystemServiceNeedsAccess(t *testing.T) {
	sim := simclock.New()
	node := hw.NewNode(sim, hw.DefaultSpec(), perfmodel.Default(), 1)
	bmc := ipmi.NewBMC(node) // no chmod
	if _, err := NewIPMISystemService(sim, bmc, node, false); err == nil {
		t.Fatal("locked /dev/ipmi0 opened without root")
	}
	if _, err := NewIPMISystemService(sim, bmc, node, true); err != nil {
		t.Fatalf("root open failed: %v", err)
	}
}

// Unused-collaborator guard: constructing Chronus with valid deps and
// immediately discarding services must not mutate any storage.
func TestNewHasNoSideEffects(t *testing.T) {
	st := settings.NewMemStore()
	before, _ := st.Load()
	r := newRig(t)
	deps := r.chronus.deps
	deps.Settings = st
	deps.Blob = blob.NewMemory()
	if _, err := New(deps); err != nil {
		t.Fatal(err)
	}
	after, _ := st.Load()
	if before.State != after.State || len(after.LocalModels) != 0 {
		t.Fatal("construction mutated settings")
	}
	keys, _ := deps.Blob.List()
	if len(keys) != 0 {
		t.Fatal("construction wrote blobs")
	}
	_ = sysinfo.SystemInfo{}
}
