package core

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"ecosched/internal/blob"
	"ecosched/internal/ecoplugin"
	"ecosched/internal/perfmodel"
	"ecosched/internal/repository"
	"ecosched/internal/settings"
	"ecosched/internal/slurm"
)

// Failure injection: every collaborator of the application layer can
// fail in production (full disk, unreachable blob store, crashed
// node); the services must surface those errors — and the submit-time
// path must fail open.

// failingRunner errors after n successful runs.
type failingRunner struct {
	inner ApplicationRunner
	after int
	runs  int
}

func (f *failingRunner) Name() string       { return f.inner.Name() }
func (f *failingRunner) BinaryPath() string { return f.inner.BinaryPath() }
func (f *failingRunner) Run(cfg perfmodel.Config) (RunResult, error) {
	if f.runs >= f.after {
		return RunResult{}, fmt.Errorf("injected: node crashed")
	}
	f.runs++
	return f.inner.Run(cfg)
}

func TestBenchmarkSurvivesPartialSweepFailure(t *testing.T) {
	r := newRig(t)
	inner := r.chronus.deps.Runner
	r.chronus.deps.Runner = &failingRunner{inner: inner, after: 2}
	// Rebuild the service bundle with the wrapped runner.
	chronus, err := New(r.chronus.deps)
	if err != nil {
		t.Fatal(err)
	}
	configs := []perfmodel.Config{cfg3(32, 2.5, 1), cfg3(32, 2.2, 1), cfg3(32, 1.5, 1)}
	if _, err := chronus.Benchmark.Run(configs, 0); err == nil {
		t.Fatal("failing runner not surfaced")
	} else if !strings.Contains(err.Error(), "injected") {
		t.Fatalf("wrong error: %v", err)
	}
	// The two successful benchmarks are persisted — a partial sweep is
	// usable data, not lost work.
	rows, _ := r.repo.ListBenchmarks(0, "")
	if len(rows) != 2 {
		t.Fatalf("%d rows persisted after partial failure, want 2", len(rows))
	}
}

// failingBlob errors on Put.
type failingBlob struct{ blob.Store }

func (failingBlob) Put(string, []byte) error { return fmt.Errorf("injected: blob unreachable") }

func TestInitModelBlobFailureLeavesNoMetadata(t *testing.T) {
	r := newRig(t)
	benchmarkSweep(t, r)
	r.chronus.deps.Blob = failingBlob{r.blob}
	chronus, err := New(r.chronus.deps)
	if err != nil {
		t.Fatal(err)
	}
	systems, _ := chronus.InitModel.Systems()
	if _, err := chronus.InitModel.Run("brute-force", systems[0].ID); err == nil {
		t.Fatal("blob failure not surfaced")
	}
	// No dangling model metadata pointing at a blob that never landed.
	models, _ := r.repo.ListModels()
	if len(models) != 0 {
		t.Fatalf("model metadata saved despite blob failure: %+v", models)
	}
}

// failingSettings errors on Save.
type failingSettings struct{ settings.Store }

func (f failingSettings) Save(settings.Settings) error {
	return fmt.Errorf("injected: /etc is read-only")
}

func TestLoadModelSettingsFailure(t *testing.T) {
	r := newRig(t)
	benchmarkSweep(t, r)
	systems, _ := r.chronus.InitModel.Systems()
	meta, err := r.chronus.InitModel.Run("brute-force", systems[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	r.chronus.deps.Settings = failingSettings{r.settings}
	chronus, err := New(r.chronus.deps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chronus.LoadModel.Run(meta.ID); err == nil {
		t.Fatal("settings failure not surfaced")
	}
}

func TestPredictCorruptLocalModel(t *testing.T) {
	r := newRig(t)
	benchmarkSweep(t, r)
	systems, _ := r.chronus.InitModel.Systems()
	meta, _ := r.chronus.InitModel.Run("brute-force", systems[0].ID)
	local, err := r.chronus.LoadModel.Run(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the pre-loaded file on "local disk".
	if err := os.WriteFile(local.Path, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	sysHash, _ := ecoplugin.SystemHash(r.fs)
	if _, _, err := doPredict(r.chronus.Predict, sysHash, ecoplugin.BinaryHash(hpcgPath)); err == nil {
		t.Fatal("corrupt model file accepted")
	}
}

func TestPredictMissingLocalFile(t *testing.T) {
	r := newRig(t)
	benchmarkSweep(t, r)
	systems, _ := r.chronus.InitModel.Systems()
	meta, _ := r.chronus.InitModel.Run("brute-force", systems[0].ID)
	local, _ := r.chronus.LoadModel.Run(meta.ID)
	os.Remove(local.Path)
	sysHash, _ := ecoplugin.SystemHash(r.fs)
	if _, _, err := doPredict(r.chronus.Predict, sysHash, ecoplugin.BinaryHash(hpcgPath)); err == nil {
		t.Fatal("missing model file accepted")
	}
}

// The end-to-end fail-open property: when the pre-loaded model is
// corrupt, an opted-in submission still succeeds — unmodified.
func TestSubmitFailsOpenOnCorruptModel(t *testing.T) {
	r := newRig(t)
	benchmarkSweep(t, r)
	systems, _ := r.chronus.InitModel.Systems()
	meta, _ := r.chronus.InitModel.Run("brute-force", systems[0].ID)
	local, _ := r.chronus.LoadModel.Run(meta.ID)
	os.WriteFile(local.Path, []byte("XX"), 0o644)

	script := "#!/bin/bash\n#SBATCH --ntasks=32\n#SBATCH --cpu-freq=2500000\n" +
		"#SBATCH --comment \"chronus\"\nsrun " + hpcgPath + "\n"
	job, err := r.controller.SubmitScript(script)
	if err != nil {
		t.Fatalf("submission rejected on model corruption: %v", err)
	}
	done, err := r.controller.WaitFor(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != slurm.StateCompleted {
		t.Fatalf("job %s", done.State)
	}
	rec, _ := r.controller.Accounting().Record(done.ID)
	if rec.FreqKHz != 2_500_000 {
		t.Fatalf("job frequency %d — a failed prediction must leave the job unmodified", rec.FreqKHz)
	}
	if r.plugin.LastErr == nil {
		t.Fatal("plugin did not record the prediction error")
	}
}

// failingRepo errors on benchmark writes.
type failingRepo struct{ repository.Repository }

func (failingRepo) SaveBenchmark(repository.Benchmark) (int64, error) {
	return 0, fmt.Errorf("injected: database disk full")
}

func TestBenchmarkRepoWriteFailure(t *testing.T) {
	r := newRig(t)
	r.chronus.deps.Repo = failingRepo{r.repo}
	chronus, err := New(r.chronus.deps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chronus.Benchmark.Run([]perfmodel.Config{cfg3(32, 2.5, 1)}, 0); err == nil {
		t.Fatal("repo write failure not surfaced")
	}
}

// slowPredictor simulates a Chronus that blows the submit budget.
type slowPredictor struct{}

func (slowPredictor) Predict(context.Context, ecoplugin.PredictRequest) (ecoplugin.PredictResult, error) {
	return ecoplugin.PredictResult{Config: perfmodel.BestConfig(), Latency: 10 * time.Second, Source: ecoplugin.SourcePreloaded}, nil
}

func TestSlurmRejectsBudgetBlowingPredictor(t *testing.T) {
	r := newRig(t)
	plugin, err := ecoplugin.New(r.fs, slowPredictor{}, r.settings)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh controller configured with only the slow plugin.
	conf, _ := slurm.ParseConf("JobSubmitPlugins=eco\nPluginBudget=2s\n")
	c2, err := slurm.NewController(r.sim, conf, r.node)
	if err != nil {
		t.Fatal(err)
	}
	c2.RegisterPlugin(plugin)
	desc := slurm.JobDesc{BinaryPath: hpcgPath, NumTasks: 32, Comment: ecoplugin.OptInComment}
	if _, err := c2.Submit(desc); err == nil {
		t.Fatal("10-second plugin decision accepted within a 2-second budget")
	}
}
