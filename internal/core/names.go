package core

// Metric, span, and event names. ecolint/metricname requires every
// name handed to metrics.Registry or trace.Tracer to be a
// package-level constant in the chronus.* namespace, so the whole
// exposition surface is greppable from this one block and renames are
// single-line diffs.
const (
	spanPredict          = "chronus.predict"
	spanPredictCacheHit  = "chronus.predict.cache_hit"
	spanPredictWait      = "chronus.predict.singleflight_wait"
	spanPredictLoad      = "chronus.predict.load"
	spanPredictReadModel = "chronus.predict.read_model"
	spanPredictDBQuery   = "chronus.predict.db_query"
	spanPredictBlobFetch = "chronus.predict.blob_fetch"
	spanPredictOptimize  = "chronus.predict.optimize"
	spanBenchmark        = "chronus.benchmark"
	spanBenchmarkRun     = "chronus.benchmark.run"
	spanLoadModel        = "chronus.load_model"

	metricPredictCacheHit         = "chronus.predict.cache_hit"
	metricPredictCacheMiss        = "chronus.predict.cache_miss"
	metricPredictCacheEntries     = "chronus.predict.cache_entries"
	metricPredictBudgetViolations = "chronus.predict.budget_violations"
	metricPredictCold             = "chronus.predict.cold"
	metricBenchmarkFailed         = "chronus.benchmark.failed"
	metricBenchmarkRuns           = "chronus.benchmark.runs"
	metricBenchmarkJobRuntime     = "chronus.benchmark.job_runtime"
	metricModelLoads              = "chronus.model.loads"
	// metricPredictDegraded counts fail-open degradations: predictions
	// that errored and let the plugin submit the job unmodified. The
	// same name doubles as the degradation trace event.
	metricPredictDegraded = "chronus.predict.degraded"
	eventPredictDegraded  = "chronus.predict.degraded"
	// metricRetryPrefix + stage counts backoff retries per load stage.
	metricRetryPrefix     = "chronus.retry."
	eventRetryBackoff     = "chronus.retry.backoff"
	metricSweepWorkers    = "chronus.sweep.workers"
	metricSweepQueueDepth = "chronus.sweep.queue_depth"
	metricSweepBatchRows  = "chronus.sweep.batch_rows"
)

// MetricPredictLatency is the bucketed decision-latency histogram of
// the prediction hot path. Exported so the root package's loadgen
// harness and SLO evaluation can find it in a snapshot by name.
const MetricPredictLatency = "chronus.predict.latency"
