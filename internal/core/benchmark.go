package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"strconv"
	"time"

	"ecosched/internal/ecoplugin"
	"ecosched/internal/perfmodel"
	"ecosched/internal/repository"
	"ecosched/internal/telemetry"
)

// DefaultSampleInterval is the paper's benchmark sampling rate
// ("sampling the energy usage ... at a 2-second interval", §3.1.2).
const DefaultSampleInterval = 2 * time.Second

// BenchmarkService is Chronus function 1: run the application across
// configurations, sampling power, and persist one Benchmark row per
// configuration (`chronus benchmark`).
type BenchmarkService struct {
	deps Deps
	log  *log.Logger
}

// ConfigJSON is the paper's benchmark configuration JSON shape (§3.3):
//
//	{"cores": 32, "threads_per_core": 2, "frequency": 2200000}
type ConfigJSON struct {
	Cores          int `json:"cores"`
	ThreadsPerCore int `json:"threads_per_core"`
	Frequency      int `json:"frequency"` // kHz
}

// ParseConfigsJSON parses the --configurations file: a JSON array of
// ConfigJSON entries.
func ParseConfigsJSON(data []byte) ([]perfmodel.Config, error) {
	var raw []ConfigJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("core: configurations JSON: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("core: configurations JSON is empty")
	}
	out := make([]perfmodel.Config, len(raw))
	for i, r := range raw {
		cfg := perfmodel.Config{Cores: r.Cores, FreqKHz: r.Frequency, ThreadsPerCore: r.ThreadsPerCore}
		if cfg.ThreadsPerCore == 0 {
			cfg.ThreadsPerCore = 1
		}
		if cfg.Cores <= 0 || cfg.FreqKHz <= 0 {
			return nil, fmt.Errorf("core: configuration %d invalid: %+v", i, r)
		}
		out[i] = cfg
	}
	return out, nil
}

// DefaultConfigs enumerates every configuration the system supports —
// the paper's behaviour when no --configurations file is given ("it
// will benchmark all configurations based on the system CPU").
func (s *BenchmarkService) DefaultConfigs() ([]perfmodel.Config, error) {
	info, err := s.deps.SysInfo.Collect()
	if err != nil {
		return nil, err
	}
	var out []perfmodel.Config
	for cores := 1; cores <= info.Cores; cores++ {
		for _, f := range info.FrequenciesKHz {
			for tpc := 1; tpc <= info.ThreadsPerCore; tpc++ {
				out = append(out, perfmodel.Config{Cores: cores, FreqKHz: f, ThreadsPerCore: tpc})
			}
		}
	}
	return out, nil
}

// Run benchmarks each configuration once and returns the run id. A
// zero interval uses DefaultSampleInterval.
func (s *BenchmarkService) Run(configs []perfmodel.Config, interval time.Duration) (int64, error) {
	return s.RunContext(context.Background(), configs, interval)
}

// RunContext is Run with caller-controlled cancellation: when ctx is
// canceled mid-sweep the configurations already measured stay
// persisted (a contiguous prefix of the sweep) and ctx.Err() comes
// back. ctx also parents the sweep's trace spans.
func (s *BenchmarkService) RunContext(ctx context.Context, configs []perfmodel.Config, interval time.Duration) (int64, error) {
	if len(configs) == 0 {
		return 0, fmt.Errorf("core: no configurations to benchmark")
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}

	ctx, span := s.deps.Tracer.Start(ctx, spanBenchmark)
	if span != nil {
		span.SetAttr("configurations", strconv.Itoa(len(configs)))
	}
	runID, err := s.run(ctx, configs, interval)
	span.End(err)
	return runID, err
}

func (s *BenchmarkService) run(ctx context.Context, configs []perfmodel.Config, interval time.Duration) (int64, error) {
	sysID, sysRec, err := s.registerSystem()
	if err != nil {
		return 0, err
	}
	appHash := ecoplugin.BinaryHash(s.deps.Runner.BinaryPath())
	runID, err := s.deps.Repo.SaveRun(repository.Run{
		SystemID: sysID, AppHash: appHash, Started: s.deps.Now(),
		Note: fmt.Sprintf("%d configurations", len(configs)),
	})
	if err != nil {
		return 0, err
	}

	if _, rebinds := s.deps.Runner.(ClusterRebinder); rebinds && s.deps.Provision != nil {
		// Worker-pool sweep: per-config node stacks, batched writes.
		if err := s.runPooled(ctx, runID, sysID, sysRec, appHash, configs, interval); err != nil {
			return runID, err
		}
	} else {
		// Serial in-place sweep on the deployment's own node (the
		// paper's shape): one configuration at a time, one row per save.
		for _, cfg := range configs {
			if err := ctx.Err(); err != nil {
				return runID, err
			}
			if err := cfg.Validate(sysRec.Cores, sysRec.ThreadsPerCore); err != nil {
				return runID, err
			}
			if _, err := s.benchmarkOne(ctx, runID, sysID, appHash, cfg, interval); err != nil {
				return runID, err
			}
		}
	}
	s.log.Printf("Run data has been saved to the repository (run %d).", runID)
	return runID, nil
}

// benchmarkOne is steps 1–3 of the paper's benchmarking flow: start
// the job, sample IPMI until it finishes, save the benchmark.
func (s *BenchmarkService) benchmarkOne(ctx context.Context, runID, sysID int64, appHash string, cfg perfmodel.Config, interval time.Duration) (_ repository.Benchmark, err error) {
	_, span := s.deps.Tracer.Start(ctx, spanBenchmarkRun)
	if span != nil {
		span.SetAttr("config", cfg.String())
		defer func() { span.End(err) }()
	}
	stop := s.deps.System.StartSampling(interval)
	result, err := s.deps.Runner.Run(cfg)
	trace := stop()
	if err != nil {
		s.deps.Metrics.Counter(metricBenchmarkFailed).Inc()
		return repository.Benchmark{}, err
	}
	if span != nil {
		span.SetAttr("gflops", fmt.Sprintf("%.3f", result.GFLOPS))
		span.SetAttr("sim_runtime", result.Runtime.String())
	}
	s.deps.Metrics.Counter(metricBenchmarkRuns).Inc()
	s.deps.Metrics.Histogram(metricBenchmarkJobRuntime).ObserveDuration(result.Runtime)
	agg, err := trace.Aggregate()
	if err != nil {
		return repository.Benchmark{}, fmt.Errorf("core: benchmark trace: %w", err)
	}
	s.log.Printf("GFLOP/s rating found: %.5f", result.GFLOPS)

	// Persist the raw samples next to the aggregate: the "energy usage
	// over time" the model-building step may consume.
	traceKey := fmt.Sprintf("traces/run%d/%dc-%dkHz-%dtpc.csv", runID, cfg.Cores, cfg.FreqKHz, cfg.ThreadsPerCore)
	var csvBuf bytes.Buffer
	if err := trace.WriteCSV(&csvBuf); err != nil {
		return repository.Benchmark{}, fmt.Errorf("core: trace CSV: %w", err)
	}
	if err := s.deps.Blob.Put(traceKey, csvBuf.Bytes()); err != nil {
		return repository.Benchmark{}, err
	}

	b := repository.Benchmark{
		RunID: runID, SystemID: sysID, AppHash: appHash,
		Cores: cfg.Cores, FreqKHz: cfg.FreqKHz, ThreadsPerCore: cfg.ThreadsPerCore,
		GFLOPS:     result.GFLOPS,
		AvgSystemW: agg.AvgSystemW, AvgCPUW: agg.AvgCPUW,
		SystemKJ: agg.SystemKJ, CPUKJ: agg.CPUKJ,
		RuntimeSeconds: result.Runtime.Seconds(),
		Created:        s.deps.Now(),
		TraceKey:       traceKey,
	}
	id, err := s.deps.Repo.SaveBenchmark(b)
	if err != nil {
		return repository.Benchmark{}, err
	}
	b.ID = id
	return b, nil
}

// registerSystem collects and persists the system identity (idempotent
// on the system key) and returns its id and record.
func (s *BenchmarkService) registerSystem() (int64, repository.System, error) {
	info, err := s.deps.SysInfo.Collect()
	if err != nil {
		return 0, repository.System{}, err
	}
	procHash, err := ecoplugin.SystemHash(s.deps.FS)
	if err != nil {
		return 0, repository.System{}, err
	}
	rec := repository.System{
		Key:            info.Key(),
		ProcHash:       procHash,
		CPUName:        info.CPUName,
		Cores:          info.Cores,
		ThreadsPerCore: info.ThreadsPerCore,
		FrequenciesKHz: info.FrequenciesKHz,
		RAMMB:          info.RAMMB,
	}
	id, err := s.deps.Repo.SaveSystem(rec)
	if err != nil {
		return 0, repository.System{}, err
	}
	rec.ID = id
	s.log.Printf("Benchmark for %s with %d cores complete registration (system %d)", info, info.Cores, id)
	return id, rec, nil
}

// LoadTrace retrieves the raw power samples saved with a benchmark.
func (s *BenchmarkService) LoadTrace(b repository.Benchmark) (*telemetry.Trace, error) {
	if b.TraceKey == "" {
		return nil, fmt.Errorf("core: benchmark %d has no stored trace", b.ID)
	}
	data, err := s.deps.Blob.Get(b.TraceKey)
	if err != nil {
		return nil, err
	}
	return telemetry.ReadCSV(bytes.NewReader(data), b.TraceKey, b.Created.Add(-time.Duration(b.RuntimeSeconds*float64(time.Second))))
}

// RunResume behaves like Run but skips configurations that already
// have a benchmark row for this system and application, so an
// interrupted sweep (a crashed node mid-way through 138 twenty-minute
// runs) restarts without repeating measured work. It returns the run
// id and how many configurations were skipped.
func (s *BenchmarkService) RunResume(configs []perfmodel.Config, interval time.Duration) (int64, int, error) {
	if len(configs) == 0 {
		return 0, 0, fmt.Errorf("core: no configurations to benchmark")
	}
	sysID, _, err := s.registerSystem()
	if err != nil {
		return 0, 0, err
	}
	appHash := ecoplugin.BinaryHash(s.deps.Runner.BinaryPath())
	existing, err := s.deps.Repo.ListBenchmarks(sysID, appHash)
	if err != nil {
		return 0, 0, err
	}
	done := map[[3]int]bool{}
	for _, b := range existing {
		done[[3]int{b.Cores, b.FreqKHz, b.ThreadsPerCore}] = true
	}
	var todo []perfmodel.Config
	for _, cfg := range configs {
		if !done[[3]int{cfg.Cores, cfg.FreqKHz, cfg.ThreadsPerCore}] {
			todo = append(todo, cfg)
		}
	}
	skipped := len(configs) - len(todo)
	if len(todo) == 0 {
		s.log.Printf("all %d configurations already benchmarked; nothing to do", len(configs))
		return 0, skipped, nil
	}
	s.log.Printf("resuming sweep: %d of %d configurations remain", len(todo), len(configs))
	runID, err := s.Run(todo, interval)
	return runID, skipped, err
}
