package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"ecosched/internal/ecoplugin"
	"ecosched/internal/hw"
	"ecosched/internal/ipmi"
	"ecosched/internal/perfmodel"
	"ecosched/internal/repository"
	"ecosched/internal/simclock"
)

func clusterRig(t *testing.T, n int) (*simclock.Sim, []*hw.Node, []*ipmi.BMC) {
	t.Helper()
	sim := simclock.New()
	nodes := make([]*hw.Node, n)
	bmcs := make([]*ipmi.BMC, n)
	for i := range nodes {
		spec := hw.DefaultSpec()
		spec.Name = fmt.Sprintf("n%02d", i)
		nodes[i] = hw.NewNode(sim, spec, perfmodel.Default(), uint64(i+1))
		bmcs[i] = ipmi.NewBMC(nodes[i])
		bmcs[i].ChmodWorldReadable()
	}
	return sim, nodes, bmcs
}

func TestClusterPowerSumsNodes(t *testing.T) {
	sim, nodes, bmcs := clusterRig(t, 3)
	svc, err := NewClusterPowerService(sim, bmcs, nodes, false)
	if err != nil {
		t.Fatal(err)
	}
	// Load two of three nodes.
	j1, _ := nodes[0].StartJob(perfmodel.StandardConfig())
	j2, _ := nodes[1].StartJob(perfmodel.BestConfig())
	defer j1.End()
	defer j2.End()
	sim.RunFor(5 * time.Minute)

	stop := svc.StartSampling(3 * time.Second)
	sim.RunFor(2 * time.Minute)
	trace := stop()
	agg, err := trace.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	// Expect ≈ 216.6 + 190.1 + idle (~130) summed.
	var want float64
	for _, n := range nodes {
		want += n.SystemPowerW()
	}
	if math.Abs(agg.AvgSystemW-want)/want > 0.05 {
		t.Fatalf("cluster avg %.1f W, instantaneous sum %.1f W", agg.AvgSystemW, want)
	}
	if agg.AvgSystemW < 500 {
		t.Fatalf("cluster power %.1f W too low for 2 loaded + 1 idle node", agg.AvgSystemW)
	}
}

func TestClusterPowerValidation(t *testing.T) {
	sim, nodes, bmcs := clusterRig(t, 2)
	if _, err := NewClusterPowerService(sim, nil, nil, false); err == nil {
		t.Fatal("empty BMC list accepted")
	}
	if _, err := NewClusterPowerService(sim, bmcs[:1], nodes, false); err == nil {
		t.Fatal("mismatched lists accepted")
	}
}

func TestClusterPowerPermission(t *testing.T) {
	sim, nodes, _ := clusterRig(t, 2)
	// Fresh BMCs without the chmod: non-root open must fail.
	locked := []*ipmi.BMC{ipmi.NewBMC(nodes[0]), ipmi.NewBMC(nodes[1])}
	if _, err := NewClusterPowerService(sim, locked, nodes, false); err == nil {
		t.Fatal("locked /dev/ipmi0 opened without root")
	}
	if _, err := NewClusterPowerService(sim, locked, nodes, true); err != nil {
		t.Fatalf("root open failed: %v", err)
	}
}

func TestBenchmarkTracePersisted(t *testing.T) {
	r := newRig(t)
	if _, err := r.chronus.Benchmark.Run([]perfmodel.Config{cfg3(32, 2.2, 1)}, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	rows, _ := r.repo.ListBenchmarks(0, "")
	if len(rows) != 1 || rows[0].TraceKey == "" {
		t.Fatalf("benchmark rows: %+v", rows)
	}
	if !r.blob.Exists(rows[0].TraceKey) {
		t.Fatalf("trace blob %s missing", rows[0].TraceKey)
	}
	trace, err := r.chronus.Benchmark.LoadTrace(rows[0])
	if err != nil {
		t.Fatal(err)
	}
	if trace.Len() < 100 {
		t.Fatalf("trace has %d samples for an ~18-minute run at 3 s", trace.Len())
	}
	agg, err := trace.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	// The stored samples must reproduce the row's aggregate power.
	if math.Abs(agg.AvgSystemW-rows[0].AvgSystemW)/rows[0].AvgSystemW > 0.01 {
		t.Fatalf("trace avg %.1f vs stored %.1f", agg.AvgSystemW, rows[0].AvgSystemW)
	}
}

func TestLoadTraceMissing(t *testing.T) {
	r := newRig(t)
	// A row without a key errors cleanly.
	if _, err := r.chronus.Benchmark.LoadTrace(repository.Benchmark{ID: 7}); err == nil {
		t.Fatal("benchmark without trace key accepted")
	}
	// A row whose blob vanished errors cleanly.
	if _, err := r.chronus.Benchmark.LoadTrace(repository.Benchmark{ID: 8, TraceKey: "traces/gone.csv"}); err == nil {
		t.Fatal("missing trace blob accepted")
	}
}

func TestBenchmarkRunResume(t *testing.T) {
	r := newRig(t)
	first := []perfmodel.Config{cfg3(32, 2.5, 1), cfg3(32, 2.2, 1), cfg3(32, 1.5, 1)}
	if _, err := r.chronus.Benchmark.Run(first, 0); err != nil {
		t.Fatal(err)
	}
	// Resume with a superset: only the two new configurations run.
	super := append(append([]perfmodel.Config(nil), first...), cfg3(30, 2.2, 1), cfg3(28, 2.2, 1))
	_, skipped, err := r.chronus.Benchmark.RunResume(super, 0)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 3 {
		t.Fatalf("skipped %d, want 3", skipped)
	}
	rows, _ := r.repo.ListBenchmarks(0, "")
	if len(rows) != 5 {
		t.Fatalf("%d rows after resume, want 5 (no duplicates)", len(rows))
	}
	// Resuming again is a no-op.
	runID, skipped, err := r.chronus.Benchmark.RunResume(super, 0)
	if err != nil {
		t.Fatal(err)
	}
	if runID != 0 || skipped != 5 {
		t.Fatalf("second resume: runID=%d skipped=%d", runID, skipped)
	}
	rows, _ = r.repo.ListBenchmarks(0, "")
	if len(rows) != 5 {
		t.Fatalf("%d rows after no-op resume", len(rows))
	}
}

// TestMultiApplicationModels is the multi-application story: one
// deployment, two binaries, two models — each application gets its own
// energy-efficient configuration, and STREAM's differs from HPCG's.
func TestMultiApplicationModels(t *testing.T) {
	r := newRig(t)

	// Benchmark HPCG (memory-bound with a compute knee at 2.2 GHz).
	benchmarkSweep(t, r)
	systems, _ := r.chronus.InitModel.Systems()
	hpcgMeta, err := r.chronus.InitModel.Run("brute-force", systems[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.chronus.LoadModel.Run(hpcgMeta.ID); err != nil {
		t.Fatal(err)
	}

	// Benchmark STREAM (pure bandwidth) through the same deployment.
	const streamPath = "/opt/stream/stream_c"
	streamRunner, err := NewStreamRunner(r.controller, streamPath)
	if err != nil {
		t.Fatal(err)
	}
	streamChronus, err := r.chronus.WithRunner(streamRunner)
	if err != nil {
		t.Fatal(err)
	}
	configs := []perfmodel.Config{
		cfg3(32, 2.5, 1), cfg3(32, 2.2, 1), cfg3(32, 1.5, 1),
		cfg3(16, 2.5, 1), cfg3(16, 1.5, 1), cfg3(8, 1.5, 1),
	}
	if _, err := streamChronus.Benchmark.Run(configs, 0); err != nil {
		t.Fatal(err)
	}
	streamMeta, err := streamChronus.InitModel.Run("brute-force", systems[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if streamMeta.AppHash == hpcgMeta.AppHash {
		t.Fatal("both applications share an app hash")
	}
	if _, err := streamChronus.LoadModel.Run(streamMeta.ID); err != nil {
		t.Fatal(err)
	}

	// Both models are pre-loaded simultaneously; predictions diverge.
	sysHash, _ := ecoplugin.SystemHash(r.fs)
	hpcgCfg, _, err := doPredict(r.chronus.Predict, sysHash, hpcgMeta.AppHash)
	if err != nil {
		t.Fatal(err)
	}
	streamCfg, _, err := doPredict(r.chronus.Predict, sysHash, streamMeta.AppHash)
	if err != nil {
		t.Fatal(err)
	}
	if hpcgCfg.FreqKHz != 2_200_000 {
		t.Fatalf("HPCG best = %v, want 2.2 GHz", hpcgCfg)
	}
	if streamCfg.FreqKHz != 1_500_000 {
		t.Fatalf("STREAM best = %v — a bandwidth-bound code should drop to 1.5 GHz", streamCfg)
	}
}
