package core

import (
	"sync"
	"time"

	"ecosched/internal/ecoplugin"
	"ecosched/internal/optimizer"
	"ecosched/internal/perfmodel"
)

// cacheKey identifies a decoded model by the pair of hashes the plugin
// submits with every prediction.
type cacheKey struct {
	systemHash string
	binaryHash string
}

// cacheEntry is one decoded model plus its precomputed best
// configuration. Entries double as singleflight slots: a loader
// publishes the entry with done still open, fills it, then closes
// done; waiters block on done instead of re-reading and re-decoding
// the same model concurrently.
type cacheEntry struct {
	done chan struct{}

	// Valid once done is closed.
	best    perfmodel.Config
	opt     optimizer.Optimizer
	latency time.Duration // what the loading path cost, for waiters
	source  ecoplugin.PredictSource
	err     error
}

// modelCache keeps decoded optimizers keyed by (systemHash,
// binaryHash) so repeated submissions of the same application skip the
// file read, the JSON decode and the optimizer sweep entirely. A cache
// hit costs only LatencyLocalRead (the settings check the real CLI
// cannot avoid).
type modelCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
}

func newModelCache() *modelCache {
	return &modelCache{entries: make(map[cacheKey]*cacheEntry)}
}

// peek returns the entry only if a load already completed
// successfully — the pure hit path, no blocking. A nil cache never
// hits.
func (c *modelCache) peek(key cacheKey) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return nil, false
		}
		return e, true
	default:
		return nil, false
	}
}

// lookup returns the entry for key and whether the caller is the
// loader. The loader must call finish exactly once; everyone else
// waits on entry.done.
func (c *modelCache) lookup(key cacheKey) (entry *cacheEntry, isLoader bool) {
	if c == nil {
		// Uncached service: every call loads for itself.
		//lint:ignore ecolint/zeroallocproof loader election runs only on a cache miss; the hit path answers from peek and never reaches lookup
		return &cacheEntry{done: make(chan struct{})}, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, false
	}
	//lint:ignore ecolint/zeroallocproof one entry per distinct (system, binary) miss; the hit path answers from peek and never reaches lookup
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	return e, true
}

// finish publishes the loader's result. Failed loads are evicted so a
// later call retries (guarded: only if the slot still holds this
// entry — an invalidation may have raced and replaced it).
func (c *modelCache) finish(key cacheKey, e *cacheEntry, best perfmodel.Config, opt optimizer.Optimizer, latency time.Duration, source ecoplugin.PredictSource, err error) {
	e.best, e.opt, e.latency, e.source, e.err = best, opt, latency, source, err
	close(e.done)
	if c == nil {
		return
	}
	if err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
}

// invalidate drops the entry for one (system, application) pair —
// called when `chronus load-model` installs a new model for it.
func (c *modelCache) invalidate(systemHash, binaryHash string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	delete(c.entries, cacheKey{systemHash, binaryHash})
	c.mu.Unlock()
}

// invalidateAll empties the cache — called on settings changes, whose
// effect on prediction (state, model registry) is not per-key.
func (c *modelCache) invalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = make(map[cacheKey]*cacheEntry)
	c.mu.Unlock()
}

// size reports the number of cached slots (including in-flight loads).
func (c *modelCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
