package core

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ecosched/internal/perfmodel"
	"ecosched/internal/repository"
	"ecosched/internal/slurm"
)

// BenchNode is one independently provisioned measurement stack: a
// single-node cluster plus the telemetry sampler watching that node.
// The benchmark worker pool measures each sweep configuration on a
// fresh BenchNode, so configurations never share mutable simulation
// state and can run concurrently. The application under benchmark is
// bound to the node's cluster per measurement via ClusterRebinder.
type BenchNode struct {
	Cluster *slurm.Controller
	System  SystemService
	// Close releases the stack after its configuration is measured
	// (optional).
	Close func()
}

// NodeProvisioner builds the BenchNode for the idx-th configuration of
// a sweep. Implementations must derive any randomness from idx (not
// from which goroutine calls them), so that a configuration's
// measurement is a pure function of (configuration, calibration,
// seed): that is the determinism guarantee that keeps sweep results —
// rows, ids, winner — byte-identical at every parallelism level.
type NodeProvisioner func(idx int) (BenchNode, error)

// ClusterRebinder is the optional ApplicationRunner extension the
// worker pool needs: produce an equivalent runner — same application,
// same job size — bound to a freshly provisioned cluster. Runners
// without it (external processes, say) keep the serial in-place sweep
// even when a provisioner is wired.
type ClusterRebinder interface {
	Rebind(c *slurm.Controller) (ApplicationRunner, error)
}

// parallelism resolves the effective worker count for n jobs.
func (s *BenchmarkService) parallelism(n int) int {
	p := s.deps.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// measured is what a worker hands the coordinator for one
// configuration: either a benchmark row (sans ID and Created, which
// the coordinator assigns at commit time) plus its raw trace, or an
// error.
type measured struct {
	idx      int
	row      repository.Benchmark
	traceCSV []byte
	err      error
}

// runPooled is the worker-pool sweep: configurations fan out across
// parallelism() workers, each measured on its own provisioned node,
// and a coordinator commits completed rows strictly in configuration
// order through the batched repository write path.
//
// Ordering/durability contract (matches the serial sweep): at any
// moment the persisted rows are exactly the configurations 0..k-1 for
// some k — a contiguous prefix in sweep order. On the first error (or
// context cancellation) the prefix already measured keeps flushing,
// later rows are discarded, and the error for the lowest-index failed
// configuration is returned.
func (s *BenchmarkService) runPooled(ctx context.Context, runID, sysID int64, sysRec repository.System, appHash string, configs []perfmodel.Config, interval time.Duration) error {
	// Validate up front; an invalid configuration truncates the sweep
	// exactly where the serial loop would have stopped.
	limit := len(configs)
	var invalidErr error
	for i, cfg := range configs {
		if err := cfg.Validate(sysRec.Cores, sysRec.ThreadsPerCore); err != nil {
			limit, invalidErr = i, err
			break
		}
	}

	workers := s.parallelism(limit)
	s.deps.Metrics.Gauge(metricSweepWorkers).Set(float64(workers))
	queueDepth := s.deps.Metrics.Gauge(metricSweepQueueDepth)

	// The job queue is pre-filled and closed; cancellation is a check
	// at the top of the worker loop, so in-flight measurements finish
	// and nothing is torn down mid-sample.
	workCtx, cancelWork := context.WithCancel(ctx)
	defer cancelWork()
	jobs := make(chan int, limit)
	for i := 0; i < limit; i++ {
		jobs <- i
	}
	close(jobs)
	queueDepth.Set(float64(limit))

	results := make(chan measured, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if workCtx.Err() != nil {
					return
				}
				queueDepth.Set(float64(len(jobs)))
				results <- s.measureConfig(workCtx, idx, runID, sysID, appHash, configs[idx], interval)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Coordinator: reorder buffer + contiguous-prefix flushes. All
	// repository, blob, clock and log access happens here, on the
	// caller's goroutine.
	pending := make(map[int]measured, workers)
	next := 0
	errIdx := limit // lowest configuration index that failed
	var firstErr error
	fail := func(idx int, err error) {
		if idx < errIdx {
			errIdx, firstErr = idx, err
		}
		cancelWork()
	}
	var batch []measured
	for m := range results {
		if m.err != nil {
			s.deps.Metrics.Counter(metricBenchmarkFailed).Inc()
			fail(m.idx, m.err)
		} else {
			pending[m.idx] = m
		}
		// Flush the contiguous prefix that just became complete. This
		// runs on every arrival — an error result can still unblock
		// nothing, but rows queued below the error index must land.
		batch = batch[:0]
		for next < errIdx {
			m, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			batch = append(batch, m)
			next++
		}
		if len(batch) == 0 {
			continue
		}
		if err := s.commitBatch(batch); err != nil {
			fail(batch[0].idx, err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return invalidErr
}

// commitBatch persists one contiguous run of measured configurations:
// per-row trace blobs, then all rows in a single batched repository
// write. Rows are stamped and logged here so ids, timestamps and log
// order are identical to the serial sweep.
func (s *BenchmarkService) commitBatch(batch []measured) error {
	rows := make([]repository.Benchmark, len(batch))
	for i, m := range batch {
		if err := s.deps.Blob.Put(m.row.TraceKey, m.traceCSV); err != nil {
			return err
		}
		m.row.Created = s.deps.Now()
		rows[i] = m.row
		s.log.Printf("GFLOP/s rating found: %.5f", m.row.GFLOPS)
		s.deps.Metrics.Counter(metricBenchmarkRuns).Inc()
		s.deps.Metrics.Histogram(metricBenchmarkJobRuntime).Observe(m.row.RuntimeSeconds)
	}
	if _, err := s.deps.Repo.SaveBenchmarks(rows); err != nil {
		return err
	}
	s.deps.Metrics.Histogram(metricSweepBatchRows).Observe(float64(len(rows)))
	return nil
}

// measureConfig is the worker half of benchmarkOne: provision a node,
// sample it while the application runs, aggregate the trace and render
// its CSV. Everything persistent is left to the coordinator. A panic
// anywhere inside (runner, sampler, aggregation) is converted into an
// error result so one bad worker cannot deadlock the pool.
func (s *BenchmarkService) measureConfig(ctx context.Context, idx int, runID, sysID int64, appHash string, cfg perfmodel.Config, interval time.Duration) (m measured) {
	m.idx = idx
	defer func() {
		if r := recover(); r != nil {
			m.err = fmt.Errorf("core: benchmark worker: config %s panicked: %v", cfg, r)
		}
	}()

	node, err := s.deps.Provision(idx)
	if err != nil {
		m.err = fmt.Errorf("core: provisioning node for config %s: %w", cfg, err)
		return m
	}
	if node.Close != nil {
		defer node.Close()
	}
	runner, err := s.deps.Runner.(ClusterRebinder).Rebind(node.Cluster)
	if err != nil {
		m.err = fmt.Errorf("core: binding %s to provisioned node for config %s: %w", s.deps.Runner.Name(), cfg, err)
		return m
	}

	_, span := s.deps.Tracer.Start(ctx, spanBenchmarkRun)
	if span != nil {
		span.SetAttr("config", cfg.String())
		defer func() { span.End(m.err) }()
	}

	stop := node.System.StartSampling(interval)
	sampling := true
	defer func() {
		if sampling {
			stop() // never leave a sampler ticking after a panic
		}
	}()
	result, err := runner.Run(cfg)
	trace := stop()
	sampling = false
	if err != nil {
		m.err = err
		return m
	}
	if span != nil {
		span.SetAttr("gflops", fmt.Sprintf("%.3f", result.GFLOPS))
		span.SetAttr("sim_runtime", result.Runtime.String())
	}
	agg, err := trace.Aggregate()
	if err != nil {
		m.err = fmt.Errorf("core: benchmark trace: %w", err)
		return m
	}
	traceKey := fmt.Sprintf("traces/run%d/%dc-%dkHz-%dtpc.csv", runID, cfg.Cores, cfg.FreqKHz, cfg.ThreadsPerCore)
	var csvBuf bytes.Buffer
	if err := trace.WriteCSV(&csvBuf); err != nil {
		m.err = fmt.Errorf("core: trace CSV: %w", err)
		return m
	}
	m.row = repository.Benchmark{
		RunID: runID, SystemID: sysID, AppHash: appHash,
		Cores: cfg.Cores, FreqKHz: cfg.FreqKHz, ThreadsPerCore: cfg.ThreadsPerCore,
		GFLOPS:     result.GFLOPS,
		AvgSystemW: agg.AvgSystemW, AvgCPUW: agg.AvgCPUW,
		SystemKJ: agg.SystemKJ, CPUKJ: agg.CPUKJ,
		RuntimeSeconds: result.Runtime.Seconds(),
		TraceKey:       traceKey,
	}
	m.traceCSV = csvBuf.Bytes()
	return m
}
