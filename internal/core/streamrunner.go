package core

import (
	"fmt"
	"time"

	"ecosched/internal/hw"
	"ecosched/internal/perfmodel"
	"ecosched/internal/slurm"
)

// StreamRunner is a second Application Runner implementation — the
// paper's Application Runner interface exists so Chronus can
// "integrate with all applications" (§3.2), and "the best energy
// efficiency configuration changes for each application". STREAM-style
// triads are almost purely bandwidth-bound: per-core compute capacity
// dwarfs the memory roof at every frequency, so unlike HPCG the
// energy-optimal configuration drops to the lowest P-state.
type StreamRunner struct {
	Controller *slurm.Controller
	StreamPath string
	model      *perfmodel.Roofline
}

// StreamModel returns the bandwidth-bound throughput model the runner
// plans with: the same node power envelope, but compute so
// over-provisioned that frequency only costs energy.
func StreamModel() *perfmodel.Roofline {
	r := perfmodel.DefaultRoofline()
	r.GFLOPSPerCoreGHz = 4.0 // per-core compute far above the memory roof
	r.MemRoofGFLOPS = 11.0   // slightly higher achievable bandwidth (pure streaming)
	r.MemHalfCores = 2.5
	return r
}

// streamWorkload plans STREAM jobs on a node: fixed work at the
// bandwidth-bound rate.
type streamWorkload struct {
	model *perfmodel.Roofline
	gflop float64
}

func (w streamWorkload) Name() string { return "stream" }

func (w streamWorkload) Plan(node *hw.Node, cfg perfmodel.Config) (time.Duration, float64) {
	g := w.model.GFLOPS(cfg)
	if g <= 0 {
		return 0, 0
	}
	return time.Duration(w.gflop / g * float64(time.Second)), g
}

// NewStreamRunner wires the runner and registers its workload model.
// Jobs are sized to ~10 minutes at full configuration.
func NewStreamRunner(c *slurm.Controller, streamPath string) (*StreamRunner, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil controller")
	}
	if streamPath == "" {
		return nil, fmt.Errorf("core: empty STREAM path")
	}
	model := StreamModel()
	full := perfmodel.Config{Cores: model.TotalCores, FreqKHz: 2_500_000, ThreadsPerCore: 1}
	gflop := model.GFLOPS(full) * 600
	c.RegisterWorkload(streamPath, streamWorkload{model: model, gflop: gflop})
	return &StreamRunner{Controller: c, StreamPath: streamPath, model: model}, nil
}

// Rebind implements ClusterRebinder: the same STREAM application on a
// freshly provisioned cluster.
func (r *StreamRunner) Rebind(c *slurm.Controller) (ApplicationRunner, error) {
	return NewStreamRunner(c, r.StreamPath)
}

// Name implements ApplicationRunner.
func (r *StreamRunner) Name() string { return "stream" }

// BinaryPath implements ApplicationRunner.
func (r *StreamRunner) BinaryPath() string { return r.StreamPath }

// Run implements ApplicationRunner.
func (r *StreamRunner) Run(cfg perfmodel.Config) (RunResult, error) {
	script := slurm.RenderBatchScript(r.StreamPath, cfg.Cores, cfg.FreqKHz, cfg.ThreadsPerCore)
	job, err := r.Controller.SubmitScript(script)
	if err != nil {
		return RunResult{}, fmt.Errorf("core: stream submit: %w", err)
	}
	done, err := r.Controller.WaitFor(job.ID)
	if err != nil {
		return RunResult{}, fmt.Errorf("core: stream wait: %w", err)
	}
	if done.State != slurm.StateCompleted {
		return RunResult{}, fmt.Errorf("core: stream job %d ended %s (%s)", done.ID, done.State, done.Reason)
	}
	rec, ok := r.Controller.Accounting().Record(done.ID)
	if !ok {
		return RunResult{}, fmt.Errorf("core: stream job %d has no accounting record", done.ID)
	}
	return RunResult{GFLOPS: rec.GFLOPS, Runtime: rec.Runtime()}, nil
}

// WithRunner returns a Chronus bundle identical to c but benchmarking
// a different application — how one deployment manages models for
// several binaries (one model per (system, application) pair).
func (c *Chronus) WithRunner(r ApplicationRunner) (*Chronus, error) {
	deps := c.deps
	deps.Runner = r
	// Share the prediction cache: a load-model through the new handle
	// must invalidate what the old handle's PredictService serves.
	return newWithCache(deps, c.cache)
}
