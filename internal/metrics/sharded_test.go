package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every representative value must land in a bucket whose range
	// contains it, and bucket upper bounds must be monotonic.
	values := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 12345,
		1e6, 1e9, 123456789012, math.MaxInt64}
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= bhBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		upper := bucketUpperNS(idx)
		if v > upper {
			t.Errorf("value %d above its bucket's upper bound %d", v, upper)
		}
		if idx > 0 && v <= bucketUpperNS(idx-1) {
			t.Errorf("value %d at or below the previous bucket's bound %d", v, bucketUpperNS(idx-1))
		}
	}
	prev := int64(-1)
	for i := 0; i < bhBuckets; i++ {
		u := bucketUpperNS(i)
		if u <= prev {
			t.Fatalf("bucket bounds not monotonic at %d: %d <= %d", i, u, prev)
		}
		prev = u
	}
}

func TestBucketedHistogramRelativeError(t *testing.T) {
	h := NewBucketedHistogram()
	for i := 1; i <= 100000; i++ {
		h.ObserveDuration(time.Duration(i) * time.Microsecond)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := q * 100000e3 // nanoseconds
		got := h.Quantile(q) * 1e9
		if rel := math.Abs(got-exact) / exact; rel > 1.0/bhSubBuckets+0.001 {
			t.Errorf("q=%g: got %g ns, exact %g ns, relative error %.4f", q, got, exact, rel)
		}
	}
}

func TestBucketedHistogramSingleValueExact(t *testing.T) {
	h := NewBucketedHistogram()
	h.ObserveDuration(7 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != 0.007 {
			t.Errorf("q=%g = %g, want exactly 0.007 (clamped into [min,max])", q, got)
		}
	}
	st := h.stat()
	if st.Count != 1 || st.Min != 0.007 || st.Max != 0.007 {
		t.Errorf("stat = %+v", st)
	}
	if len(st.Buckets) != 1 || st.Buckets[0].Count != 1 {
		t.Errorf("buckets = %+v", st.Buckets)
	}
}

func TestBucketedHistogramEmptyAndNil(t *testing.T) {
	var nilH *BucketedHistogram
	nilH.Observe(1)         // must not panic
	nilH.ObserveDuration(1) // must not panic
	if nilH.Count() != 0 {
		t.Fatal("nil count")
	}
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Fatal("nil quantile not NaN")
	}
	h := NewBucketedHistogram()
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	st := h.stat()
	if st.Count != 0 || len(st.Buckets) != 0 {
		t.Errorf("empty stat = %+v", st)
	}
}

func TestBucketedHistogramExtremes(t *testing.T) {
	h := NewBucketedHistogram()
	h.Observe(-5)                       // clamps to zero
	h.Observe(math.NaN())               // dropped
	h.Observe(2 * maxObservableSeconds) // saturates
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2 (NaN dropped)", got)
	}
	if min := h.Quantile(0); min != 0 {
		t.Errorf("min = %g, want 0", min)
	}
}

func TestBucketedHistogramConcurrent(t *testing.T) {
	h := NewBucketedHistogram()
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	if got := h.Quantile(0.99); math.Abs(got-0.001) > 1e-9 {
		t.Errorf("p99 = %g, want 0.001", got)
	}
}

func TestCounterStripesFold(t *testing.T) {
	c := &Counter{}
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("Value = %d, want %d", got, goroutines*per)
	}
}

func TestGaugeAtomic(t *testing.T) {
	g := &Gauge{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8000 {
		t.Fatalf("Value = %g, want 8000", got)
	}
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Fatalf("Value = %g, want -2.5", got)
	}
}

// The emit path must never allocate: these are the acceptance-criteria
// checks, enforced both here (AllocsPerRun, runs in plain `go test`)
// and by the alloc-check make target (-benchmem on the benchmarks
// below).
func TestEmitPathsDoNotAllocate(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	c := &Counter{}
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op", n)
	}
	g := &Gauge{}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f/op", n)
	}
	h := NewBucketedHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.ObserveDuration(time.Millisecond) }); n != 0 {
		t.Errorf("BucketedHistogram.ObserveDuration allocates %.1f/op", n)
	}
}

func BenchmarkShardedCounterInc(b *testing.B) {
	c := &Counter{}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() == 0 {
		b.Fatal("no increments recorded")
	}
}

func BenchmarkBucketedHistogramObserve(b *testing.B) {
	h := NewBucketedHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.ObserveDuration(time.Millisecond)
		}
	})
	if h.Count() == 0 {
		b.Fatal("no observations recorded")
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := &Gauge{}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g.Set(1)
		}
	})
}

// BenchmarkBucketedHistogramQuantile covers the read side: an
// O(bhBuckets) scan, no sort, regardless of observation count.
func BenchmarkBucketedHistogramQuantile(b *testing.B) {
	h := NewBucketedHistogram()
	for i := 0; i < 100000; i++ {
		h.ObserveDuration(time.Duration(i) * time.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantiles(0.5, 0.99, 0.999)
	}
}
