// Package metrics is the observability subsystem of the production
// submit path: named counters, gauges and latency histograms with
// percentiles, collected into a Registry and dumped as text or JSON.
//
// It is deliberately distinct from internal/telemetry, which records
// the *simulated hardware's* power traces (the paper's IPMI samples);
// metrics here observe the *software* — how many submissions the eco
// plugin rewrote, how often the prediction cache hit, how long the
// hot path took — so the latency-budget story of §3.1.2 can be proven
// with numbers instead of asserted.
//
// Every type is safe for concurrent use and nil-safe: methods on a
// nil *Registry, *Counter, *Gauge or *Histogram are no-ops, so
// components can be instrumented unconditionally and wired with a nil
// registry when observability is not wanted (tests, tiny tools).
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric, striped across
// cache-line-padded atomic shards (see sharded.go) so fleet-rate
// increments from many goroutines never convoy on one cache line.
type Counter struct {
	stripes [stripeCount]paddedInt64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored — counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.stripes[stripeIndex()].v.Add(delta)
}

// Value returns the current count, folding the stripes. Concurrent
// increments may or may not be included — the usual counter-read
// semantics — but the value never decreases across calls.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// Gauge is a point-in-time float metric (queue depth, cache size),
// stored as atomic float bits: Set is a plain store, Add a CAS loop,
// and neither locks nor allocates. Gauges are last-write-wins
// point-in-time data, so unlike counters they gain nothing from
// striping — one atomic word is already contention-free for the
// set-dominated access pattern.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histogramWindow bounds the per-histogram sample retention:
// percentiles are computed over the most recent observations, while
// count/sum/min/max cover the histogram's whole lifetime.
const histogramWindow = 4096

// Histogram records a distribution of observations. Percentile
// queries are exact over a sliding window of the most recent
// histogramWindow observations; Count, Sum, Min and Max are exact
// over all observations.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	window   []float64 // ring buffer of recent observations
	next     int       // ring write position
}

// Observe records one value. The critical section unlocks explicitly —
// no defer — because this is called on every power sample and every
// submit, and the defer machinery is measurable there.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.window == nil {
		// Full-capacity up front: the hot path (every power sample, every
		// submit) must never pay an append regrowth.
		h.window = make([]float64, 0, histogramWindow)
	}
	if len(h.window) < histogramWindow {
		h.window = append(h.window, v)
	} else {
		h.window[h.next] = v
		h.next = (h.next + 1) % histogramWindow
	}
	h.mu.Unlock()
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	n := h.count
	h.mu.Unlock()
	return n
}

// Quantile returns the q-quantile (q in [0,1]) over the retained
// window, or NaN when nothing has been observed. Callers needing
// several quantiles should use Quantiles, which copies and sorts the
// window once for the whole batch.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Quantiles(q)[0]
}

// Quantiles returns the q-quantiles over the retained window (NaN per
// entry when nothing has been observed), locking, copying and sorting
// the window exactly once — not once per quantile.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if h == nil {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	h.mu.Lock()
	sorted := append([]float64(nil), h.window...)
	h.mu.Unlock()
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = sortedQuantile(sorted, q)
	}
	return out
}

// sortedQuantile is the nearest-rank quantile over an already-sorted
// window, so callers needing several quantiles sort once and index.
func sortedQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return samples[0]
	}
	if q >= 1 {
		return samples[len(samples)-1]
	}
	// Nearest-rank on the sorted window.
	idx := int(math.Ceil(q*float64(len(samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return samples[idx]
}

func (h *Histogram) stat() HistogramStat {
	h.mu.Lock()
	sorted := append([]float64(nil), h.window...)
	st := HistogramStat{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	h.mu.Unlock()
	if st.Count > 0 {
		st.Mean = st.Sum / float64(st.Count)
	}
	sort.Float64s(sorted)
	st.P50 = sortedQuantile(sorted, 0.50)
	st.P90 = sortedQuantile(sorted, 0.90)
	st.P99 = sortedQuantile(sorted, 0.99)
	st.P999 = sortedQuantile(sorted, 0.999)
	return st
}

// Registry holds named metrics. The zero value is not usable; call
// New. A nil *Registry is a valid no-op sink.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	histograms  map[string]*Histogram
	bhistograms map[string]*BucketedHistogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		histograms:  make(map[string]*Histogram),
		bhistograms: make(map[string]*BucketedHistogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		//lint:ignore ecolint/zeroallocproof one-time registration; steady-state calls return the cached metric
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		//lint:ignore ecolint/zeroallocproof one-time registration; steady-state calls return the cached metric
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// BucketedHistogram returns the named log-bucketed histogram, creating
// it on first use. Bucketed and exact histograms share the snapshot
// namespace, so a name must consistently be one or the other.
func (r *Registry) BucketedHistogram(name string) *BucketedHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	h, ok := r.bhistograms[name]
	if !ok {
		h = NewBucketedHistogram()
		r.bhistograms[name] = h
	}
	r.mu.Unlock()
	return h
}

// HistogramStat is a histogram summarised for a snapshot. For the
// exact Histogram, percentiles are over the retained window and the
// other fields are lifetime-exact; for a BucketedHistogram, everything
// is lifetime and Buckets carries the sparse bucket counts the SLO
// evaluation consumes.
type HistogramStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	// Buckets, present only for bucketed histograms, lists the
	// non-empty log buckets in ascending LE order: Count observations
	// fell at or below LE seconds (and above the previous bucket's LE).
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty bucket of a BucketedHistogram snapshot.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Snapshot is a point-in-time copy of every metric in a registry —
// what `chronus metrics` persists and prints.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStat{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	bhistograms := make(map[string]*BucketedHistogram, len(r.bhistograms))
	for k, v := range r.bhistograms {
		bhistograms[k] = v
	}
	r.mu.Unlock()

	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range histograms {
		s.Histograms[k] = v.stat()
	}
	for k, v := range bhistograms {
		s.Histograms[k] = v.stat()
	}
	return s
}

// MarshalJSON encodes the stat with NaN percentiles (an empty
// histogram) zeroed: JSON has no NaN, and Count == 0 already tells a
// reader there is no data. Without this, a hot path that caches a
// histogram handle before the first observation would make the whole
// persisted snapshot unmarshalable.
func (h HistogramStat) MarshalJSON() ([]byte, error) {
	type alias HistogramStat // avoid recursion
	a := alias(h)
	for _, p := range []*float64{&a.Mean, &a.P50, &a.P90, &a.P99, &a.P999} {
		if math.IsNaN(*p) {
			*p = 0
		}
	}
	return json.Marshal(a)
}

// Merge folds other into s: counters add, histogram lifetimes
// combine, and gauges plus histogram percentiles take other's values
// (the most recent observation wins for point-in-time data).
func (s *Snapshot) Merge(other Snapshot) {
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramStat{}
	}
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		s.Gauges[k] = v
	}
	for k, v := range other.Histograms {
		cur, ok := s.Histograms[k]
		if !ok || cur.Count == 0 {
			s.Histograms[k] = v
			continue
		}
		if v.Count == 0 {
			continue
		}
		merged := HistogramStat{
			Count: cur.Count + v.Count,
			Sum:   cur.Sum + v.Sum,
			Min:   math.Min(cur.Min, v.Min),
			Max:   math.Max(cur.Max, v.Max),
			// Percentiles cannot be combined exactly from summaries;
			// keep the most recent window's, like the gauges.
			P50: v.P50, P90: v.P90, P99: v.P99, P999: v.P999,
		}
		merged.Mean = merged.Sum / float64(merged.Count)
		if len(cur.Buckets) > 0 || len(v.Buckets) > 0 {
			// Bucketed histograms CAN combine exactly: bucket counts
			// add, and the percentiles recompute from the merged CDF.
			merged.Buckets = mergeBuckets(cur.Buckets, v.Buckets)
			merged.P50 = bucketQuantile(merged, 0.50)
			merged.P90 = bucketQuantile(merged, 0.90)
			merged.P99 = bucketQuantile(merged, 0.99)
			merged.P999 = bucketQuantile(merged, 0.999)
		}
		s.Histograms[k] = merged
	}
}

// mergeBuckets adds two sparse bucket lists, preserving ascending LE
// order. Bucket bounds come from the fixed log-bucket layout, so equal
// bounds compare equal exactly.
func mergeBuckets(a, b []BucketCount) []BucketCount {
	out := make([]BucketCount, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].LE < b[j].LE:
			out = append(out, a[i])
			i++
		case a[i].LE > b[j].LE:
			out = append(out, b[j])
			j++
		default:
			out = append(out, BucketCount{LE: a[i].LE, Count: a[i].Count + b[j].Count})
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// bucketQuantile is the nearest-rank quantile over a stat's sparse
// bucket CDF, clamped into [Min, Max] like the live histogram's.
func bucketQuantile(st HistogramStat, q float64) float64 {
	if st.Count == 0 || len(st.Buckets) == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(st.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > st.Count {
		rank = st.Count
	}
	var cum int64
	v := st.Buckets[len(st.Buckets)-1].LE
	for _, b := range st.Buckets {
		cum += b.Count
		if cum >= rank {
			v = b.LE
			break
		}
	}
	return math.Min(math.Max(v, st.Min), st.Max)
}

// MarshalJSON renders the snapshot with deterministic key order (Go
// maps marshal sorted, so the default marshaller suffices; this
// method exists to keep the wire shape explicit).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursion
	return json.Marshal(alias(s))
}

// WriteText dumps the snapshot in a stable, human-readable layout.
func (s Snapshot) WriteText(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "counter   %-44s %d\n", name, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "gauge     %-44s %g\n", name, s.Gauges[name])
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		format := fmtSeconds
		if strings.HasSuffix(name, "_rows") {
			format = fmtCount
		}
		fmt.Fprintf(w, "histogram %-44s count=%d mean=%s p50=%s p90=%s p99=%s p999=%s max=%s\n",
			name, h.Count, format(h.Mean), format(h.P50), format(h.P90), format(h.P99), format(h.P999), format(h.Max))
	}
}

// fmtSeconds renders a seconds-valued observation as a duration —
// histograms observe latencies in seconds unless their name says
// otherwise (see fmtCount).
func fmtSeconds(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// fmtCount renders a dimensionless observation (histograms named
// `*_rows` observe batch sizes, not latencies).
func fmtCount(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
