// Sharded hot-path primitives: cache-line-padded counter stripes and a
// fixed log-bucketed (HDR-style) histogram. At fleet rates (~160k
// submissions/s across many goroutines) a single atomic word — let
// alone a mutex — becomes a coherence hotspot: every increment bounces
// one cache line between cores. Striping spreads writers over
// stripeCount independent lines and folds them back together only on
// the read side (Value/Snapshot), which runs orders of magnitude less
// often than the write side.
package metrics

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// stripeCount is the number of independent cache-line-padded stripes a
// sharded metric spreads its writers over. Must be a power of two so
// stripe selection is a mask, not a modulo.
const stripeCount = 8

// paddedInt64 is an atomic counter alone on its cache line, so two
// stripes never share a line and increments on different stripes never
// contend.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte // pad to 64 bytes
}

// stripeIndex picks a stripe. rand/v2's global generator is backed by
// a per-thread source (no lock, no allocation), so concurrent writers
// scatter across stripes instead of convoying on one.
func stripeIndex() int {
	return int(rand.Uint64() & (stripeCount - 1))
}

// Log-bucketed histogram layout: an observation is a non-negative
// int64 of nanoseconds. Values below bhSubBuckets get exact unit
// buckets; above that, each power of two is split into bhSubBuckets
// sub-buckets, bounding the relative quantile error at
// 1/bhSubBuckets (~3.1%). The whole int64 range fits in bhBuckets
// fixed buckets, so quantiles are an O(bhBuckets) scan — no window,
// no sort, no per-observation allocation.
const (
	bhSubBits    = 5
	bhSubBuckets = 1 << bhSubBits
	// int64's highest set bit is 62, so exponent groups run
	// bhSubBits..62 and the top bucket's upper bound is exactly
	// MaxInt64 — one more group would overflow the bound arithmetic.
	bhBuckets = (63 - bhSubBits + 1) * bhSubBuckets
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	if ns < bhSubBuckets {
		return int(ns)
	}
	exp := bits.Len64(uint64(ns)) - 1 // position of the highest set bit, >= bhSubBits
	sub := int((uint64(ns) >> uint(exp-bhSubBits)) & (bhSubBuckets - 1))
	return (exp-bhSubBits+1)*bhSubBuckets + sub
}

// bucketUpperNS returns the largest nanosecond value bucket idx holds —
// the bucket's inclusive upper bound, which quantile queries report
// (then clamp into [min, max]).
func bucketUpperNS(idx int) int64 {
	if idx < bhSubBuckets {
		return int64(idx)
	}
	group := idx / bhSubBuckets // >= 1
	sub := idx % bhSubBuckets
	shift := uint(group - 1)
	lower := (int64(bhSubBuckets) + int64(sub)) << shift
	return lower + (int64(1)<<shift - 1)
}

// bhStripe is one writer stripe: per-bucket counts plus lifetime
// count/sum/min/max, all plain atomics.
type bhStripe struct {
	counts [bhBuckets]atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
	minNS  atomic.Int64
	maxNS  atomic.Int64
	// Pad to a whole number of cache lines so neighbouring stripes
	// never share one (ecolint/atomicshape checks the arithmetic).
	_ [32]byte
}

// BucketedHistogram is a log-bucketed latency histogram sharded across
// cache-line-padded stripes: Observe is lock-free and allocation-free,
// and p50/p99/p999 come from an O(bhBuckets) merge with no per-query
// sort. It trades the exact sliding-window percentiles of Histogram
// for ~3% relative error and lifetime (not windowed) coverage — the
// right trade for the submit hot path; offline telemetry aggregation
// keeps the exact Histogram.
//
// The zero value is not usable; call NewBucketedHistogram (or
// Registry.BucketedHistogram). A nil *BucketedHistogram is a valid
// no-op, like every other metric type here.
type BucketedHistogram struct {
	stripes [stripeCount]bhStripe
}

// NewBucketedHistogram returns an empty bucketed histogram.
func NewBucketedHistogram() *BucketedHistogram {
	h := &BucketedHistogram{}
	for i := range h.stripes {
		h.stripes[i].minNS.Store(math.MaxInt64)
		h.stripes[i].maxNS.Store(math.MinInt64)
	}
	return h
}

// maxObservableSeconds saturates float observations so the ns
// conversion cannot overflow (≈292 years).
const maxObservableSeconds = float64(math.MaxInt64) / 1e9

// Observe records one value in seconds (the unit every histogram here
// observes latencies in). Negative values clamp to zero, NaN is
// dropped, and values beyond the int64-nanosecond range saturate.
func (h *BucketedHistogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	switch {
	case v <= 0:
		h.observeNS(0)
	case v >= maxObservableSeconds:
		h.observeNS(math.MaxInt64)
	default:
		h.observeNS(int64(v * 1e9))
	}
}

// ObserveDuration records a latency. This is the hot-path entry: no
// float conversion, no lock, no allocation.
func (h *BucketedHistogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.observeNS(ns)
}

func (h *BucketedHistogram) observeNS(ns int64) {
	st := &h.stripes[stripeIndex()]
	st.counts[bucketIndex(ns)].Add(1)
	st.count.Add(1)
	st.sumNS.Add(ns)
	for {
		old := st.minNS.Load()
		if ns >= old || st.minNS.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := st.maxNS.Load()
		if ns <= old || st.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the lifetime observation count.
func (h *BucketedHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	var total int64
	for i := range h.stripes {
		total += h.stripes[i].count.Load()
	}
	return total
}

// bhMerged is the read-side fold of every stripe.
type bhMerged struct {
	counts       []int64
	total, sumNS int64
	minNS, maxNS int64
}

func (h *BucketedHistogram) merge() bhMerged {
	m := bhMerged{counts: make([]int64, bhBuckets), minNS: math.MaxInt64, maxNS: math.MinInt64}
	for i := range h.stripes {
		st := &h.stripes[i]
		m.total += st.count.Load()
		m.sumNS += st.sumNS.Load()
		if v := st.minNS.Load(); v < m.minNS {
			m.minNS = v
		}
		if v := st.maxNS.Load(); v > m.maxNS {
			m.maxNS = v
		}
		for b := range st.counts {
			m.counts[b] += st.counts[b].Load()
		}
	}
	return m
}

// quantileNS returns the nearest-rank q-quantile as the holding
// bucket's upper bound, clamped into the observed [min, max] so
// degenerate distributions (one value) answer exactly.
func (m *bhMerged) quantileNS(q float64) int64 {
	rank := int64(math.Ceil(q * float64(m.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > m.total {
		rank = m.total
	}
	var cum int64
	for i, c := range m.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			ns := bucketUpperNS(i)
			if ns < m.minNS {
				ns = m.minNS
			}
			if ns > m.maxNS {
				ns = m.maxNS
			}
			return ns
		}
	}
	return m.maxNS
}

// Quantile returns the q-quantile (q in [0,1]) in seconds over all
// observations, or NaN when nothing has been observed.
func (h *BucketedHistogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	m := h.merge()
	if m.total == 0 {
		return math.NaN()
	}
	return float64(m.quantileNS(q)) / 1e9
}

// Quantiles returns the q-quantiles in seconds, merging the stripes
// once for the whole batch.
func (h *BucketedHistogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if h == nil {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	m := h.merge()
	for i, q := range qs {
		if m.total == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = float64(m.quantileNS(q)) / 1e9
	}
	return out
}

// stat summarises the histogram for a snapshot, including the sparse
// bucket CDF the SLO evaluation consumes.
func (h *BucketedHistogram) stat() HistogramStat {
	m := h.merge()
	st := HistogramStat{Count: m.total, Sum: float64(m.sumNS) / 1e9}
	if m.total == 0 {
		st.P50, st.P90, st.P99, st.P999 = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return st
	}
	st.Min = float64(m.minNS) / 1e9
	st.Max = float64(m.maxNS) / 1e9
	st.Mean = st.Sum / float64(st.Count)
	st.P50 = float64(m.quantileNS(0.50)) / 1e9
	st.P90 = float64(m.quantileNS(0.90)) / 1e9
	st.P99 = float64(m.quantileNS(0.99)) / 1e9
	st.P999 = float64(m.quantileNS(0.999)) / 1e9
	for i, c := range m.counts {
		if c == 0 {
			continue
		}
		st.Buckets = append(st.Buckets, BucketCount{LE: float64(bucketUpperNS(i)) / 1e9, Count: c})
	}
	return st
}
