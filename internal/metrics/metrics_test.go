package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("jobs.submitted")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("jobs.submitted") != c {
		t.Fatal("same name returned a different counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("cache.entries")
	g.Set(3)
	g.Add(2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %g, want 5", got)
	}
}

func TestHistogramStats(t *testing.T) {
	r := New()
	h := r.Histogram("predict.latency")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Fatalf("p50 = %g, want 50", q)
	}
	if q := h.Quantile(0.99); q != 99 {
		t.Fatalf("p99 = %g, want 99", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %g, want 100", q)
	}
	st := r.Snapshot().Histograms["predict.latency"]
	if st.Min != 1 || st.Max != 100 || st.Mean != 50.5 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestHistogramWindowBoundsMemory(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 3*histogramWindow; i++ {
		h.Observe(float64(i))
	}
	if len(h.window) != histogramWindow {
		t.Fatalf("window grew to %d", len(h.window))
	}
	if h.Count() != int64(3*histogramWindow) {
		t.Fatalf("lifetime count = %d", h.Count())
	}
	// Percentiles reflect the recent window, not ancient history.
	if q := h.Quantile(0); q < float64(2*histogramWindow) {
		t.Fatalf("window min %g includes evicted observations", q)
	}
}

func TestEmptyHistogramQuantileIsNaN(t *testing.T) {
	if !math.IsNaN((&Histogram{}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	r.Histogram("z").ObserveDuration(time.Second)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil registry retained state")
	}
	if !math.IsNaN(r.Histogram("z").Quantile(0.5)) {
		t.Fatal("nil histogram quantile not NaN")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(float64(i))
				r.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestSnapshotMergeAddsCounters(t *testing.T) {
	a := New()
	a.Counter("predict.hit").Add(3)
	a.Histogram("lat").Observe(1)
	a.Histogram("lat").Observe(3)
	b := New()
	b.Counter("predict.hit").Add(2)
	b.Counter("predict.miss").Inc()
	b.Gauge("models").Set(7)
	b.Histogram("lat").Observe(5)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters["predict.hit"] != 5 || s.Counters["predict.miss"] != 1 {
		t.Fatalf("merged counters = %+v", s.Counters)
	}
	if s.Gauges["models"] != 7 {
		t.Fatalf("merged gauges = %+v", s.Gauges)
	}
	h := s.Histograms["lat"]
	if h.Count != 3 || h.Sum != 9 || h.Min != 1 || h.Max != 5 || h.Mean != 3 {
		t.Fatalf("merged histogram = %+v", h)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a").Inc()
	r.Gauge("b").Set(2.5)
	r.Histogram("c").Observe(0.001)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 1 || back.Gauges["b"] != 2.5 || back.Histograms["c"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestWriteTextStableAndReadable(t *testing.T) {
	r := New()
	r.Counter("b.count").Inc()
	r.Counter("a.count").Add(2)
	r.Histogram("lat").ObserveDuration(2 * time.Millisecond)
	var buf bytes.Buffer
	r.Snapshot().WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "a.count") || !strings.Contains(out, "b.count") {
		t.Fatalf("missing counters:\n%s", out)
	}
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Fatal("counters not sorted")
	}
	if !strings.Contains(out, "2ms") {
		t.Fatalf("latency not rendered as a duration:\n%s", out)
	}
}

func TestWriteTextRowsHistogramsArePlainNumbers(t *testing.T) {
	r := New()
	r.Histogram("sweep.batch_rows").Observe(8)
	var buf bytes.Buffer
	r.Snapshot().WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "mean=8 ") {
		t.Fatalf("batch size not rendered as a plain number:\n%s", out)
	}
	if strings.Contains(out, "8s") {
		t.Fatalf("batch size rendered as a duration:\n%s", out)
	}
}
