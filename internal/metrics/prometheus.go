package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4) — what `chronus serve` returns on
// /metrics. Metric names are sanitised to the Prometheus charset
// (dots become underscores); histograms render as summaries with
// quantile series plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", p, p, promFloat(s.Gauges[name]))
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		p := promName(name)
		fmt.Fprintf(w, "# TYPE %s summary\n", p)
		if h.Count > 0 {
			fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", p, promFloat(h.P50))
			fmt.Fprintf(w, "%s{quantile=\"0.9\"} %s\n", p, promFloat(h.P90))
			fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", p, promFloat(h.P99))
			fmt.Fprintf(w, "%s{quantile=\"0.999\"} %s\n", p, promFloat(h.P999))
		}
		fmt.Fprintf(w, "%s_sum %s\n", p, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", p, h.Count)
	}
}

// promName maps a dotted metric name onto the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects (Go's %g is
// compatible, including NaN and ±Inf spellings).
func promFloat(v float64) string { return fmt.Sprintf("%g", v) }
