package metrics

import (
	"strings"
	"testing"
	"time"
)

// sloSnapshot builds a snapshot where good observations sit well under
// the threshold and bad ones well over it.
func sloSnapshot(t *testing.T, good, bad int) Snapshot {
	t.Helper()
	r := New()
	h := r.BucketedHistogram("chronus.test.latency")
	for i := 0; i < good; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	for i := 0; i < bad; i++ {
		h.ObserveDuration(50 * time.Millisecond)
	}
	return r.Snapshot()
}

func TestEvalSLO(t *testing.T) {
	snap := sloSnapshot(t, 999, 1)
	rep, err := EvalSLO(snap, SLO{Metric: "chronus.test.latency", Threshold: 10 * time.Millisecond, Objective: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1000 || rep.Good != 999 {
		t.Fatalf("good/total = %d/%d", rep.Good, rep.Total)
	}
	if rep.Attainment != 0.999 {
		t.Errorf("attainment = %g", rep.Attainment)
	}
	// 0.1% failures against a 1% error budget: 10% burned.
	if rep.ErrorBudgetBurn < 0.099 || rep.ErrorBudgetBurn > 0.101 {
		t.Errorf("burn = %g, want ~0.1", rep.ErrorBudgetBurn)
	}
	if !rep.Met {
		t.Error("SLO should be met")
	}
}

func TestEvalSLOViolated(t *testing.T) {
	snap := sloSnapshot(t, 90, 10)
	rep, err := EvalSLO(snap, SLO{Metric: "chronus.test.latency", Threshold: 10 * time.Millisecond, Objective: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Met {
		t.Error("SLO should be violated at 90% attainment vs 99% objective")
	}
	if rep.ErrorBudgetBurn < 9.9 || rep.ErrorBudgetBurn > 10.1 {
		t.Errorf("burn = %g, want ~10", rep.ErrorBudgetBurn)
	}
}

func TestEvalSLOSurvivesMerge(t *testing.T) {
	// The `chronus slo` path: snapshots persisted by separate runs are
	// merged, and the SLO math must hold on the merged bucket counts.
	a := sloSnapshot(t, 500, 0)
	b := sloSnapshot(t, 499, 1)
	a.Merge(b)
	rep, err := EvalSLO(a, SLO{Metric: "chronus.test.latency", Threshold: 10 * time.Millisecond, Objective: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1000 || rep.Good != 999 {
		t.Fatalf("merged good/total = %d/%d, want 999/1000", rep.Good, rep.Total)
	}
}

func TestEvalSLOErrors(t *testing.T) {
	snap := sloSnapshot(t, 1, 0)
	cases := []SLO{
		{Metric: "chronus.test.latency", Threshold: time.Millisecond, Objective: 0}, // objective out of range
		{Metric: "chronus.test.latency", Threshold: time.Millisecond, Objective: 1}, // objective out of range
		{Metric: "chronus.test.latency", Threshold: 0, Objective: 0.99},             // no threshold
		{Metric: "chronus.missing", Threshold: time.Millisecond, Objective: 0.99},   // unknown metric
	}
	for _, c := range cases {
		if _, err := EvalSLO(snap, c); err == nil {
			t.Errorf("EvalSLO(%+v) should fail", c)
		}
	}
	// An exact (windowed) histogram has no buckets, so it cannot back
	// an SLO evaluation.
	r := New()
	r.Histogram("chronus.test.exact").Observe(0.001)
	if _, err := EvalSLO(r.Snapshot(), SLO{Metric: "chronus.test.exact", Threshold: time.Millisecond, Objective: 0.99}); err == nil {
		t.Error("EvalSLO over an unbucketed histogram should fail")
	}
}

// An empty histogram must yield an explicit no-data verdict — never an
// error, and never a "met" report (the old behavior errored; a caller
// swallowing the error read it as 100% attainment).
func TestEvalSLOEmptyHistogramNoData(t *testing.T) {
	snap := sloSnapshot(t, 0, 0)
	rep, err := EvalSLO(snap, SLO{Metric: "chronus.test.latency", Threshold: 10 * time.Millisecond, Objective: 0.99})
	if err != nil {
		t.Fatalf("empty histogram should not error: %v", err)
	}
	if !rep.NoData {
		t.Fatalf("empty histogram: NoData = false, want true (report %+v)", rep)
	}
	if rep.Met {
		t.Fatal("empty histogram must not report the SLO as met")
	}
	if rep.Total != 0 || rep.Good != 0 || rep.Attainment != 0 {
		t.Fatalf("empty histogram: totals %+v, want all zero", rep)
	}
	var text strings.Builder
	rep.WriteText(&text)
	if !strings.Contains(text.String(), "status      NO DATA") {
		t.Errorf("text report missing NO DATA status:\n%s", text.String())
	}
}

func TestSLOReportRenders(t *testing.T) {
	snap := sloSnapshot(t, 999, 1)
	rep, err := EvalSLO(snap, SLO{Metric: "chronus.test.latency", Threshold: 10 * time.Millisecond, Objective: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	var text, prom strings.Builder
	rep.WriteText(&text)
	for _, want := range []string{"chronus.test.latency", "attainment", "status      met"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
	rep.WritePrometheus(&prom)
	for _, want := range []string{
		`chronus_slo_attainment{metric="chronus.test.latency"} 0.999`,
		`chronus_slo_error_budget_burn{metric="chronus.test.latency"}`,
		`chronus_slo_objective{metric="chronus.test.latency"} 0.99`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, prom.String())
		}
	}
}

// Bucketed histograms must flow through snapshot JSON and text
// rendering like exact ones.
func TestBucketedHistogramSnapshotRendering(t *testing.T) {
	r := New()
	r.BucketedHistogram("chronus.test.latency").ObserveDuration(3 * time.Millisecond)
	snap := r.Snapshot()

	var text strings.Builder
	snap.WriteText(&text)
	if !strings.Contains(text.String(), "chronus.test.latency") || !strings.Contains(text.String(), "p999=") {
		t.Errorf("WriteText missing bucketed histogram or p999:\n%s", text.String())
	}
	var prom strings.Builder
	snap.WritePrometheus(&prom)
	if !strings.Contains(prom.String(), `chronus_test_latency{quantile="0.999"}`) {
		t.Errorf("WritePrometheus missing p999 series:\n%s", prom.String())
	}
}
