package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("eco.submit.rewritten").Add(3)
	r.Gauge("predict.cache.entries").Set(2)
	h := r.Histogram("predict.latency.seconds")
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		h.ObserveDuration(d)
	}

	var b strings.Builder
	r.Snapshot().WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE eco_submit_rewritten counter\neco_submit_rewritten 3\n",
		"# TYPE predict_cache_entries gauge\npredict_cache_entries 2\n",
		"# TYPE predict_latency_seconds summary\n",
		`predict_latency_seconds{quantile="0.5"} 0.02`,
		`predict_latency_seconds{quantile="0.99"} 0.03`,
		"predict_latency_seconds_sum 0.06",
		"predict_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Dotted names must not leak through.
	if strings.Contains(out, "eco.submit") {
		t.Errorf("unsanitised name in exposition:\n%s", out)
	}
}

// An empty histogram must not emit quantile series (they would be NaN)
// but still expose _sum and _count so the series exists.
func TestWritePrometheusEmptyHistogram(t *testing.T) {
	r := New()
	r.Histogram("idle.latency.seconds")

	var b strings.Builder
	r.Snapshot().WritePrometheus(&b)
	out := b.String()

	if strings.Contains(out, "quantile") {
		t.Errorf("empty histogram emitted quantiles:\n%s", out)
	}
	if !strings.Contains(out, "idle_latency_seconds_count 0\n") || !strings.Contains(out, "idle_latency_seconds_sum 0\n") {
		t.Errorf("empty histogram missing _sum/_count:\n%s", out)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"eco.submit.total": "eco_submit_total",
		"9lives":           "_lives",
		"ok_name:sub":      "ok_name:sub",
		"spaced out":       "spaced_out",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// The satellite fix: stat() must sort the window once, and the
// quantiles it reports must agree with Quantile().
func TestStatQuantilesAgree(t *testing.T) {
	h := &Histogram{}
	for i := 100; i >= 1; i-- {
		h.Observe(float64(i))
	}
	st := h.stat()
	if got := h.Quantile(0.5); got != st.P50 {
		t.Errorf("P50: stat=%g Quantile=%g", st.P50, got)
	}
	if got := h.Quantile(0.99); got != st.P99 {
		t.Errorf("P99: stat=%g Quantile=%g", st.P99, got)
	}
	if st.P50 != 50 || st.P90 != 90 || st.P99 != 99 {
		t.Errorf("stat = %+v", st)
	}
}
