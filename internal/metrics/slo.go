// SLO evaluation over a bucketed histogram's CDF: "fraction of submit
// decisions answered within the latency budget, against an objective".
// The evaluation is stateless — it consumes a Snapshot, so it works
// identically on the live registry (/metrics), the persisted
// metrics.json (`chronus slo`), and a loadgen run's report.
package metrics

import (
	"fmt"
	"io"
	"time"
)

// DefaultObjective is the attainment target used when a caller does
// not state one: 99% of submit decisions within the latency budget.
const DefaultObjective = 0.99

// SLO states a latency objective for one histogram: at least Objective
// of observations must be at or below Threshold.
type SLO struct {
	// Metric is the histogram name (a bucketed histogram: the bucket
	// CDF is what makes the good/total split computable from a
	// snapshot).
	Metric string
	// Threshold is the per-observation latency objective, typically the
	// slurm.conf eco_budget.
	Threshold time.Duration
	// Objective is the target attainment fraction in (0, 1), e.g.
	// 0.999 for "99.9% of submits within budget".
	Objective float64
}

// SLOReport is the evaluation outcome.
type SLOReport struct {
	Metric     string  `json:"metric"`
	ThresholdS float64 `json:"threshold_s"`
	Objective  float64 `json:"objective"`
	Total      int64   `json:"total"`
	Good       int64   `json:"good"`
	Attainment float64 `json:"attainment"`
	// ErrorBudgetBurn is the consumed fraction of the allowed error
	// budget: (1 - attainment) / (1 - objective). 1.0 means the budget
	// is exactly spent; above 1.0 the SLO is violated.
	ErrorBudgetBurn float64 `json:"error_budget_burn"`
	Met             bool    `json:"met"`
	// NoData marks an evaluation over an empty histogram: the histogram
	// exists but has zero observations, so attainment is undefined.
	// Callers must not read it as "SLO met" — the CLI exits non-zero.
	NoData bool `json:"no_data,omitempty"`
}

// EvalSLO evaluates slo against a snapshot. The named histogram must
// carry bucket counts (i.e. be a BucketedHistogram) — the exact
// sliding-window histogram cannot answer "how many observations ever
// exceeded the threshold" from its summary.
func EvalSLO(s Snapshot, slo SLO) (SLOReport, error) {
	r := SLOReport{Metric: slo.Metric, ThresholdS: slo.Threshold.Seconds(), Objective: slo.Objective}
	if slo.Objective <= 0 || slo.Objective >= 1 {
		return r, fmt.Errorf("metrics: SLO objective must be in (0, 1), got %g", slo.Objective)
	}
	if slo.Threshold <= 0 {
		return r, fmt.Errorf("metrics: SLO threshold must be positive, got %v", slo.Threshold)
	}
	st, ok := s.Histograms[slo.Metric]
	if !ok {
		return r, fmt.Errorf("metrics: no histogram %q in snapshot", slo.Metric)
	}
	if len(st.Buckets) == 0 {
		if st.Count == 0 {
			// A histogram with no observations snapshots with no buckets
			// regardless of its kind: an explicit no-data verdict, not an
			// error. Attainment stays zero and Met stays false so a
			// careless caller fails safe.
			r.NoData = true
			return r, nil
		}
		return r, fmt.Errorf("metrics: histogram %q has no bucket counts (not a bucketed histogram?)", slo.Metric)
	}
	// A bucket is good when its whole range fits the threshold. The
	// bucket straddling the threshold counts as bad — conservative by
	// at most one bucket width (~3% of the threshold).
	for _, b := range st.Buckets {
		r.Total += b.Count
		if b.LE <= r.ThresholdS {
			r.Good += b.Count
		}
	}
	if r.Total == 0 {
		r.NoData = true
		return r, nil
	}
	r.Attainment = float64(r.Good) / float64(r.Total)
	r.ErrorBudgetBurn = (1 - r.Attainment) / (1 - slo.Objective)
	r.Met = r.Attainment >= slo.Objective
	return r, nil
}

// WriteText renders the report in a stable human-readable layout.
func (r SLOReport) WriteText(w io.Writer) {
	status := "met"
	switch {
	case r.NoData:
		status = "NO DATA"
	case !r.Met:
		status = "VIOLATED"
	}
	fmt.Fprintf(w, "slo         %s\n", r.Metric)
	fmt.Fprintf(w, "threshold   %v\n", time.Duration(r.ThresholdS*float64(time.Second)).Round(time.Microsecond))
	fmt.Fprintf(w, "objective   %.4f%%\n", r.Objective*100)
	fmt.Fprintf(w, "observed    %d total, %d within threshold\n", r.Total, r.Good)
	fmt.Fprintf(w, "attainment  %.4f%%\n", r.Attainment*100)
	fmt.Fprintf(w, "budget burn %.3f\n", r.ErrorBudgetBurn)
	fmt.Fprintf(w, "status      %s\n", status)
}

// SLO gauge names on the Prometheus exposition. Rendered with a
// metric label per evaluated histogram.
const (
	sloAttainmentName = "chronus.slo.attainment"
	sloObjectiveName  = "chronus.slo.objective"
	sloBurnName       = "chronus.slo.error_budget_burn"
	sloThresholdName  = "chronus.slo.threshold_seconds"
)

// WritePrometheus renders the report as labelled gauges, appendable to
// a Snapshot.WritePrometheus exposition.
func (r SLOReport) WritePrometheus(w io.Writer) {
	label := fmt.Sprintf("{metric=%q}", r.Metric)
	for _, g := range []struct {
		name string
		v    float64
	}{
		{sloAttainmentName, r.Attainment},
		{sloObjectiveName, r.Objective},
		{sloBurnName, r.ErrorBudgetBurn},
		{sloThresholdName, r.ThresholdS},
	} {
		p := promName(g.name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %s\n", p, p, label, promFloat(g.v))
	}
}
