package leakcheck

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// recorder captures Fatalf instead of failing, so the failure path of
// the checker itself can be asserted.
type recorder struct {
	testing.TB
	failed bool
	msg    string
}

func (r *recorder) Helper() {}

func (r *recorder) Fatalf(format string, args ...any) {
	r.failed = true
	r.msg = fmt.Sprintf(format, args...)
}

func TestCheckPassesWhenGoroutinesExit(t *testing.T) {
	rec := &recorder{}
	check := Check(rec)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	check()
	if rec.failed {
		t.Fatalf("clean exit reported as a leak: %s", rec.msg)
	}
}

func TestCheckReportsLeakedGoroutine(t *testing.T) {
	old := grace
	grace = 50 * time.Millisecond
	defer func() { grace = old }()

	rec := &recorder{}
	check := Check(rec)
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	go func() {
		close(started)
		<-block // leaked until the test cleans up
	}()
	<-started
	check()
	if !rec.failed {
		t.Fatal("leaked goroutine not reported")
	}
	if !strings.Contains(rec.msg, "goroutine leak") {
		t.Fatalf("unexpected failure message: %s", rec.msg)
	}
}
