// Package leakcheck is a test helper asserting that a test leaves no
// goroutines behind — the guard the chaos suite puts around
// Deployment.Close, whose contract is to drain in-flight predictions
// (and the retry backoffs inside them) before tearing stores down.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// grace bounds how long the returned check waits for goroutines that
// are already unwinding; shortened by leakcheck's own failure test.
var grace = 5 * time.Second

// Check snapshots the goroutine count; the returned function fails the
// test if, after a grace period for exits in progress, more goroutines
// remain than were running at the snapshot. Use as:
//
//	defer leakcheck.Check(t)()
func Check(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		// Goroutines unwind asynchronously after Close returns; poll
		// with a deadline instead of failing on the first count.
		deadline := time.Now().Add(grace)
		for {
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d at start, %d still running\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	}
}
