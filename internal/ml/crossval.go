package ml

import "fmt"

// KFoldR2 estimates a model family's generalisation quality: the
// dataset is split into k deterministic folds (round-robin by row
// index), the family is fitted on k−1 folds and scored on the held-out
// fold, and the R² values are averaged. Chronus stores this with each
// trained model so operators can tell a surface the model actually
// learned from one it memorised.
func KFoldR2(d Dataset, k int, fit func(Dataset) (Model, error)) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if k < 2 {
		return 0, fmt.Errorf("ml: k-fold needs k ≥ 2, got %d", k)
	}
	n := len(d.X)
	if n < 2*k {
		return 0, fmt.Errorf("ml: %d rows too few for %d folds", n, k)
	}
	var sum float64
	for fold := 0; fold < k; fold++ {
		var train, test Dataset
		for i := 0; i < n; i++ {
			if i%k == fold {
				test.X = append(test.X, d.X[i])
				test.Y = append(test.Y, d.Y[i])
			} else {
				train.X = append(train.X, d.X[i])
				train.Y = append(train.Y, d.Y[i])
			}
		}
		m, err := fit(train)
		if err != nil {
			return 0, fmt.Errorf("ml: fold %d: %w", fold, err)
		}
		sum += R2(m, test)
	}
	return sum / float64(k), nil
}
