package ml

import (
	"fmt"
	"math"
	"sort"
)

// NelderMeadOptions configure the simplex minimiser.
type NelderMeadOptions struct {
	MaxIters int     // default 2000
	Tol      float64 // stop when the simplex's f-spread falls below (default 1e-10)
	Step     float64 // initial simplex step per coordinate (default 0.1 of |x|, min 0.01)
}

// NelderMead minimises f over ℝⁿ starting from x0 using the classic
// downhill-simplex method (reflection, expansion, contraction,
// shrink). It is derivative-free, which suits the calibration problems
// here: fitting roofline constants to a measured surface.
func NelderMead(f func([]float64) float64, x0 []float64, opts NelderMeadOptions) ([]float64, float64, error) {
	n := len(x0)
	if n == 0 {
		return nil, 0, fmt.Errorf("ml: empty start point")
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 2000
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{append([]float64(nil), x0...), f(x0)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		step := opts.Step
		if step <= 0 {
			step = 0.1 * math.Abs(x[i])
			if step < 0.01 {
				step = 0.01
			}
		}
		x[i] += step
		simplex[i+1] = vertex{x, f(x)}
	}
	order := func() {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	}
	order()

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	for iter := 0; iter < opts.MaxIters; iter++ {
		if simplex[n].f-simplex[0].f < opts.Tol {
			break
		}
		// Centroid of all but the worst.
		centroid := make([]float64, n)
		for _, v := range simplex[:n] {
			for j := range centroid {
				centroid[j] += v.x[j] / float64(n)
			}
		}
		worst := simplex[n]
		reflect := combine(centroid, worst.x, 1+alpha, -alpha)
		fr := f(reflect)
		switch {
		case fr < simplex[0].f:
			expand := combine(centroid, worst.x, 1+alpha*gamma, -alpha*gamma)
			if fe := f(expand); fe < fr {
				simplex[n] = vertex{expand, fe}
			} else {
				simplex[n] = vertex{reflect, fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{reflect, fr}
		default:
			contract := combine(centroid, worst.x, 1-rho, rho)
			if fc := f(contract); fc < worst.f {
				simplex[n] = vertex{contract, fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					simplex[i].x = combine(simplex[0].x, simplex[i].x, 1-sigma, sigma)
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
		order()
	}
	return simplex[0].x, simplex[0].f, nil
}

func combine(a, b []float64, wa, wb float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = wa*a[i] + wb*b[i]
	}
	return out
}
