// Package ml implements the learning machinery Chronus's optimizers
// are built from — the paper's Python implementations use
// scikit-learn; here ordinary least squares, CART regression trees,
// bagged random forests and a genetic algorithm (the related-work
// baseline of Table 3) are implemented from scratch on the standard
// library.
//
// All fitting is deterministic: anything stochastic (bootstrap
// sampling, feature subsets, GA operators) draws from a seeded
// generator supplied by the caller.
package ml

import "fmt"

// Dataset is a design matrix with aligned targets.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Validate checks shape consistency: non-empty, rectangular, aligned.
func (d Dataset) Validate() error {
	if len(d.X) == 0 {
		return fmt.Errorf("ml: empty dataset")
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d rows but %d targets", len(d.X), len(d.Y))
	}
	w := len(d.X[0])
	if w == 0 {
		return fmt.Errorf("ml: zero-width rows")
	}
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), w)
		}
	}
	return nil
}

// Features returns the feature count.
func (d Dataset) Features() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Model is anything that predicts a target from a feature vector.
type Model interface {
	Predict(x []float64) float64
}

// MSE returns the mean squared error of a model over a dataset.
func MSE(m Model, d Dataset) float64 {
	if len(d.Y) == 0 {
		return 0
	}
	var sum float64
	for i, row := range d.X {
		e := m.Predict(row) - d.Y[i]
		sum += e * e
	}
	return sum / float64(len(d.Y))
}

// R2 returns the coefficient of determination of a model over a
// dataset (1 = perfect, 0 = no better than the mean).
func R2(m Model, d Dataset) float64 {
	if len(d.Y) == 0 {
		return 0
	}
	var mean float64
	for _, y := range d.Y {
		mean += y
	}
	mean /= float64(len(d.Y))
	var ssRes, ssTot float64
	for i, row := range d.X {
		e := m.Predict(row) - d.Y[i]
		ssRes += e * e
		dy := d.Y[i] - mean
		ssTot += dy * dy
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
