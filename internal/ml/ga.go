package ml

import (
	"fmt"
	"sort"

	"ecosched/internal/simclock"
)

// GAOptions configure the genetic algorithm — the search strategy of
// the paper's related-work baseline ("Energy-Optimal Configurations
// for Single-Node HPC Applications" uses a genetic algorithm to find
// the optimal configuration; §2.1.2, compared against in Table 3).
type GAOptions struct {
	Population  int     // individuals per generation (default 40)
	Generations int     // evolution steps (default 60)
	MutationP   float64 // per-gene mutation probability (default 0.15)
	Elite       int     // individuals copied unchanged (default 2)
	Seed        uint64
}

func (o GAOptions) withDefaults() GAOptions {
	if o.Population <= 0 {
		o.Population = 40
	}
	if o.Generations <= 0 {
		o.Generations = 60
	}
	if o.MutationP <= 0 {
		o.MutationP = 0.15
	}
	if o.Elite <= 0 {
		o.Elite = 2
	}
	if o.Elite > o.Population/2 {
		o.Elite = o.Population / 2
	}
	return o
}

// Genome is an integer-encoded candidate: gene i takes values in
// [0, Ranges[i]).
type Genome []int

// RunGA maximises fitness over integer genomes with the given per-gene
// ranges, using tournament selection, single-point crossover, uniform
// mutation and elitism. It returns the best genome found and its
// fitness.
func RunGA(ranges []int, fitness func(Genome) float64, opts GAOptions) (Genome, float64, error) {
	if len(ranges) == 0 {
		return nil, 0, fmt.Errorf("ml: GA with empty genome")
	}
	for i, r := range ranges {
		if r < 1 {
			return nil, 0, fmt.Errorf("ml: GA gene %d has range %d", i, r)
		}
	}
	opts = opts.withDefaults()
	rng := simclock.NewRNG(opts.Seed)

	type scored struct {
		g   Genome
		fit float64
	}
	newRandom := func() Genome {
		g := make(Genome, len(ranges))
		for i, r := range ranges {
			g[i] = rng.Intn(r)
		}
		return g
	}
	pop := make([]scored, opts.Population)
	for i := range pop {
		g := newRandom()
		pop[i] = scored{g, fitness(g)}
	}
	rank := func() {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].fit > pop[b].fit })
	}
	rank()

	tournament := func() Genome {
		best := pop[rng.Intn(len(pop))]
		for k := 0; k < 2; k++ {
			c := pop[rng.Intn(len(pop))]
			if c.fit > best.fit {
				best = c
			}
		}
		return best.g
	}

	for gen := 0; gen < opts.Generations; gen++ {
		next := make([]scored, 0, opts.Population)
		next = append(next, pop[:opts.Elite]...)
		for len(next) < opts.Population {
			a, b := tournament(), tournament()
			child := make(Genome, len(ranges))
			cut := rng.Intn(len(ranges))
			copy(child, a[:cut])
			copy(child[cut:], b[cut:])
			for i, r := range ranges {
				if rng.Float64() < opts.MutationP {
					child[i] = rng.Intn(r)
				}
			}
			next = append(next, scored{child, fitness(child)})
		}
		pop = next
		rank()
	}
	best := pop[0]
	out := make(Genome, len(best.g))
	copy(out, best.g)
	return out, best.fit, nil
}
