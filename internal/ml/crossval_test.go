package ml

import "testing"

func TestKFoldR2OnLinearData(t *testing.T) {
	d := linearData(200, 0.3, 10)
	r2, err := KFoldR2(d, 5, func(train Dataset) (Model, error) { return FitLinear(train) })
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.98 {
		t.Fatalf("CV R² = %v on nearly-linear data", r2)
	}
}

func TestKFoldR2DetectsUselessModel(t *testing.T) {
	// Pure-noise target: no model generalises; CV R² must be ≈0 or
	// negative, never confidently positive.
	d := linearData(200, 0, 11)
	for i := range d.Y {
		d.Y[i] = NewNoise(uint64(i)) // decorrelate targets from features
	}
	r2, err := KFoldR2(d, 5, func(train Dataset) (Model, error) {
		return FitForest(train, ForestOptions{Trees: 20, Seed: 3})
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2 > 0.3 {
		t.Fatalf("CV R² = %v on pure noise — leakage between folds?", r2)
	}
}

func TestKFoldR2Validation(t *testing.T) {
	d := linearData(20, 0, 12)
	fit := func(train Dataset) (Model, error) { return FitLinear(train) }
	if _, err := KFoldR2(Dataset{}, 5, fit); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if _, err := KFoldR2(d, 1, fit); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := KFoldR2(linearData(6, 0, 13), 5, fit); err == nil {
		t.Fatal("6 rows across 5 folds accepted")
	}
}

func TestKFoldPropagatesFitErrors(t *testing.T) {
	d := linearData(20, 0, 14)
	if _, err := KFoldR2(d, 4, func(Dataset) (Model, error) {
		return nil, errBoom
	}); err == nil {
		t.Fatal("fit error swallowed")
	}
}

var errBoom = &fitError{}

type fitError struct{}

func (*fitError) Error() string { return "boom" }

// NewNoise is a deterministic hash-based pseudo-noise used by the
// leakage test above.
func NewNoise(i uint64) float64 {
	i ^= i >> 33
	i *= 0xff51afd7ed558ccd
	i ^= i >> 33
	return float64(i%1000)/500 - 1
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		dx, dy := x[0]-3, x[1]+1.5
		return dx*dx + 2*dy*dy + 7
	}
	x, fx, err := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fx > 7+1e-6 {
		t.Fatalf("minimum value %v, want ≈7", fx)
	}
	if x[0] < 2.99 || x[0] > 3.01 || x[1] < -1.51 || x[1] > -1.49 {
		t.Fatalf("minimiser %v, want (3, −1.5)", x)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, fx, err := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIters: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if fx > 1e-6 {
		t.Fatalf("Rosenbrock minimum %v at %v", fx, x)
	}
}

func TestNelderMeadEmptyStart(t *testing.T) {
	if _, _, err := NelderMead(func([]float64) float64 { return 0 }, nil, NelderMeadOptions{}); err == nil {
		t.Fatal("empty start accepted")
	}
}
