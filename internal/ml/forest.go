package ml

import (
	"fmt"

	"ecosched/internal/simclock"
)

// ForestOptions configure a bagged random forest.
type ForestOptions struct {
	Trees       int    // number of trees (default 50)
	MaxDepth    int    // per-tree depth cap (0 = unlimited)
	MinLeafSize int    // per-tree leaf floor
	MaxFeatures int    // features per split (0 = ⌈p/3⌉, the regression default)
	Seed        uint64 // RNG seed — same seed, same forest
}

func (o ForestOptions) withDefaults(p int) ForestOptions {
	if o.Trees <= 0 {
		o.Trees = 50
	}
	if o.MinLeafSize < 1 {
		o.MinLeafSize = 1
	}
	if o.MaxFeatures <= 0 {
		o.MaxFeatures = (p + 2) / 3
	}
	return o
}

// Forest is a bagged ensemble of regression trees.
type Forest struct {
	Trees []*Tree `json:"trees"`
}

// FitForest trains a random forest: each tree sees a bootstrap
// resample of the rows and a random feature subset per split.
func FitForest(d Dataset, opts ForestOptions) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(d.Features())
	rng := simclock.NewRNG(opts.Seed)
	n := len(d.X)
	forest := &Forest{Trees: make([]*Tree, 0, opts.Trees)}
	for t := 0; t < opts.Trees; t++ {
		// Bootstrap resample.
		boot := Dataset{X: make([][]float64, n), Y: make([]float64, n)}
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			boot.X[i] = d.X[j]
			boot.Y[i] = d.Y[j]
		}
		tree, err := FitTree(boot, TreeOptions{
			MaxDepth:    opts.MaxDepth,
			MinLeafSize: opts.MinLeafSize,
			MaxFeatures: opts.MaxFeatures,
			rng:         rng,
		})
		if err != nil {
			return nil, fmt.Errorf("ml: forest tree %d: %w", t, err)
		}
		forest.Trees = append(forest.Trees, tree)
	}
	return forest, nil
}

// Predict implements Model: the mean of the trees' predictions.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.Trees) == 0 {
		return 0
	}
	var sum float64
	for _, t := range f.Trees {
		sum += t.Predict(x)
	}
	return sum / float64(len(f.Trees))
}

// FeatureImportance returns each feature's share of the total
// squared-error reduction across all splits in the forest (summing to
// 1 when any split exists) — which knob the model actually uses.
func (f *Forest) FeatureImportance(features int) []float64 {
	imp := make([]float64, features)
	for _, t := range f.Trees {
		walkImportance(t.Root, imp)
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

func walkImportance(n *TreeNode, imp []float64) {
	if n == nil || n.IsLeaf() {
		return
	}
	if n.Feature >= 0 && n.Feature < len(imp) {
		imp[n.Feature] += n.Gain
	}
	walkImportance(n.Left, imp)
	walkImportance(n.Right, imp)
}
