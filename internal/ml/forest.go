package ml

import (
	"fmt"
	"runtime"
	"sync"

	"ecosched/internal/simclock"
)

// ForestOptions configure a bagged random forest.
type ForestOptions struct {
	Trees       int    // number of trees (default 50)
	MaxDepth    int    // per-tree depth cap (0 = unlimited)
	MinLeafSize int    // per-tree leaf floor
	MaxFeatures int    // features per split (0 = ⌈p/3⌉, the regression default)
	Seed        uint64 // RNG seed — same seed, same forest
}

func (o ForestOptions) withDefaults(p int) ForestOptions {
	if o.Trees <= 0 {
		o.Trees = 50
	}
	if o.MinLeafSize < 1 {
		o.MinLeafSize = 1
	}
	if o.MaxFeatures <= 0 {
		o.MaxFeatures = (p + 2) / 3
	}
	return o
}

// Forest is a bagged ensemble of regression trees.
type Forest struct {
	Trees []*Tree `json:"trees"`
}

// FitForest trains a random forest: each tree sees a bootstrap
// resample of the rows and a random feature subset per split.
//
// Trees are fitted concurrently. Determinism is preserved by deriving
// one sub-seed per tree from the forest seed up front, so each tree's
// randomness (bootstrap draws + per-split feature subsets) is a pure
// function of (opts.Seed, tree index) — the same seed yields the same
// forest at any GOMAXPROCS.
func FitForest(d Dataset, opts ForestOptions) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(d.Features())
	rng := simclock.NewRNG(opts.Seed)
	seeds := make([]uint64, opts.Trees)
	for t := range seeds {
		seeds[t] = rng.Uint64()
	}
	n := len(d.X)
	forest := &Forest{Trees: make([]*Tree, opts.Trees)}
	errs := make([]error, opts.Trees)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for t := 0; t < opts.Trees; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			trng := simclock.NewRNG(seeds[t])
			// Bootstrap resample.
			boot := Dataset{X: make([][]float64, n), Y: make([]float64, n)}
			for i := 0; i < n; i++ {
				j := trng.Intn(n)
				boot.X[i] = d.X[j]
				boot.Y[i] = d.Y[j]
			}
			forest.Trees[t], errs[t] = FitTree(boot, TreeOptions{
				MaxDepth:    opts.MaxDepth,
				MinLeafSize: opts.MinLeafSize,
				MaxFeatures: opts.MaxFeatures,
				rng:         trng,
			})
		}(t)
	}
	wg.Wait()
	for t, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ml: forest tree %d: %w", t, err)
		}
	}
	return forest, nil
}

// Predict implements Model: the mean of the trees' predictions.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.Trees) == 0 {
		return 0
	}
	var sum float64
	for _, t := range f.Trees {
		sum += t.Predict(x)
	}
	return sum / float64(len(f.Trees))
}

// FeatureImportance returns each feature's share of the total
// squared-error reduction across all splits in the forest (summing to
// 1 when any split exists) — which knob the model actually uses.
func (f *Forest) FeatureImportance(features int) []float64 {
	imp := make([]float64, features)
	for _, t := range f.Trees {
		walkImportance(t.Root, imp)
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

func walkImportance(n *TreeNode, imp []float64) {
	if n == nil || n.IsLeaf() {
		return
	}
	if n.Feature >= 0 && n.Feature < len(imp) {
		imp[n.Feature] += n.Gain
	}
	walkImportance(n.Left, imp)
	walkImportance(n.Right, imp)
}
