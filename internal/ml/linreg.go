package ml

import (
	"fmt"
	"math"
)

// LinearRegression is an ordinary-least-squares model ŷ = w·x + b,
// fitted via the normal equations with a tiny ridge term for
// numerical stability on collinear designs.
type LinearRegression struct {
	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
}

// FitLinear fits OLS on the dataset.
func FitLinear(d Dataset) (*LinearRegression, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	p := d.Features()
	n := len(d.X)
	// Augmented design: [x, 1] so the intercept falls out of the solve.
	dim := p + 1
	// Normal equations: (XᵀX + λI)·w = Xᵀy.
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
	}
	atb := make([]float64, dim)
	row := make([]float64, dim)
	for r := 0; r < n; r++ {
		copy(row, d.X[r])
		row[p] = 1
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * d.Y[r]
		}
	}
	const lambda = 1e-9
	for i := 0; i < dim; i++ {
		ata[i][i] += lambda * float64(n)
	}
	sol, err := SolveLinearSystem(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("ml: OLS solve: %w", err)
	}
	return &LinearRegression{Weights: sol[:p], Intercept: sol[p]}, nil
}

// Predict implements Model.
func (l *LinearRegression) Predict(x []float64) float64 {
	sum := l.Intercept
	for i, w := range l.Weights {
		if i < len(x) {
			sum += w * x[i]
		}
	}
	return sum
}

// SolveLinearSystem solves A·x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("ml: bad system shape %d×? vs %d", n, len(b))
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("ml: non-square matrix row %d", i)
		}
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-14 {
			return nil, fmt.Errorf("ml: singular matrix at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, nil
}
