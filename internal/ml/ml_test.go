package ml

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"ecosched/internal/simclock"
)

func linearData(n int, noise float64, seed uint64) Dataset {
	rng := simclock.NewRNG(seed)
	d := Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x1 := rng.Float64() * 10
		x2 := rng.Float64() * 5
		x3 := rng.Float64()
		d.X[i] = []float64{x1, x2, x3}
		d.Y[i] = 3*x1 - 2*x2 + 0.5*x3 + 7 + noise*rng.Norm()
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	ok := Dataset{X: [][]float64{{1, 2}, {3, 4}}, Y: []float64{1, 2}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Dataset{
		{},
		{X: [][]float64{{1}}, Y: []float64{1, 2}},
		{X: [][]float64{{}}, Y: []float64{1}},
		{X: [][]float64{{1, 2}, {3}}, Y: []float64{1, 2}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad dataset %d accepted", i)
		}
	}
}

func TestLinearRecoversExactCoefficients(t *testing.T) {
	d := linearData(200, 0, 1)
	m, err := FitLinear(d)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 0.5}
	for i, w := range want {
		if math.Abs(m.Weights[i]-w) > 1e-6 {
			t.Fatalf("weight %d = %v, want %v", i, m.Weights[i], w)
		}
	}
	if math.Abs(m.Intercept-7) > 1e-6 {
		t.Fatalf("intercept = %v, want 7", m.Intercept)
	}
	if r2 := R2(m, d); r2 < 0.999999 {
		t.Fatalf("R² = %v on noiseless data", r2)
	}
}

func TestLinearWithNoise(t *testing.T) {
	d := linearData(2000, 0.5, 2)
	m, err := FitLinear(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-3) > 0.1 {
		t.Fatalf("weight 0 = %v, want ≈3", m.Weights[0])
	}
	if r2 := R2(m, d); r2 < 0.98 {
		t.Fatalf("R² = %v", r2)
	}
}

func TestLinearRejectsEmpty(t *testing.T) {
	if _, err := FitLinear(Dataset{}); err == nil {
		t.Fatal("empty dataset fitted")
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	b := []float64{8, -11, -3}
	x, err := SolveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveSingularRejected(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinearSystem(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system solved")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := SolveLinearSystem(nil, nil); err == nil {
		t.Fatal("empty system solved")
	}
	if _, err := SolveLinearSystem([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("non-square system solved")
	}
}

func stepData() Dataset {
	// y = 10 when x0 ≤ 5 else 20; second feature is pure noise shape.
	var d Dataset
	for i := 0; i < 40; i++ {
		x := float64(i) / 4.0
		y := 10.0
		if x > 5 {
			y = 20
		}
		d.X = append(d.X, []float64{x, 1})
		d.Y = append(d.Y, y)
	}
	return d
}

func TestTreeFitsStepFunction(t *testing.T) {
	tree, err := FitTree(stepData(), TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{2, 1}); got != 10 {
		t.Fatalf("Predict(2) = %v, want 10", got)
	}
	if got := tree.Predict([]float64{8, 1}); got != 20 {
		t.Fatalf("Predict(8) = %v, want 20", got)
	}
	if tree.Root.IsLeaf() {
		t.Fatal("tree did not split")
	}
	if tree.Root.Feature != 0 {
		t.Fatalf("split on feature %d, want 0", tree.Root.Feature)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	d := linearData(200, 0, 3)
	tree, err := FitTree(d, TreeOptions{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 3 {
		t.Fatalf("depth = %d, cap was 3", tree.Depth())
	}
}

func TestTreeRespectsMinLeaf(t *testing.T) {
	d := linearData(64, 0, 4)
	tree, err := FitTree(d, TreeOptions{MinLeafSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if leaves := tree.CountLeaves(); leaves > 4 {
		t.Fatalf("%d leaves with MinLeafSize=16 on 64 rows", leaves)
	}
}

func TestTreeConstantTargetIsLeaf(t *testing.T) {
	d := Dataset{X: [][]float64{{1}, {2}, {3}, {4}}, Y: []float64{5, 5, 5, 5}}
	tree, err := FitTree(d, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Fatal("constant target grew a split")
	}
	if tree.Predict([]float64{99}) != 5 {
		t.Fatal("leaf value wrong")
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	tree, _ := FitTree(stepData(), TreeOptions{})
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, 4, 6, 9} {
		if tree.Predict([]float64{x, 1}) != back.Predict([]float64{x, 1}) {
			t.Fatalf("round-tripped tree predicts differently at %v", x)
		}
	}
}

func TestForestDeterministicBySeed(t *testing.T) {
	d := linearData(150, 0.3, 5)
	f1, err := FitForest(d, ForestOptions{Trees: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := FitForest(d, ForestOptions{Trees: 10, Seed: 42})
	f3, _ := FitForest(d, ForestOptions{Trees: 10, Seed: 43})
	x := []float64{5, 2, 0.5}
	if f1.Predict(x) != f2.Predict(x) {
		t.Fatal("same seed, different forest")
	}
	if f1.Predict(x) == f3.Predict(x) {
		t.Fatal("different seed, identical forest (suspicious)")
	}
}

func TestForestFitsReasonably(t *testing.T) {
	d := linearData(400, 0.2, 6)
	f, err := FitForest(d, ForestOptions{Trees: 30, MinLeafSize: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r2 := R2(f, d); r2 < 0.95 {
		t.Fatalf("forest R² = %v", r2)
	}
}

func TestForestSmoothsSingleTreeVariance(t *testing.T) {
	// On noisy data, averaging bootstrap replicas should not leave the
	// forest's held-out error above a deep single tree's; typically it
	// is far lower. MaxFeatures is pinned to the full feature count so
	// the test isolates bagging: per-split feature subsetting on a
	// strongly linear target adds bias that can swamp the variance
	// reduction at some seeds, which is not the property under test.
	train := linearData(300, 1.0, 8)
	test := linearData(300, 1.0, 9)
	tree, _ := FitTree(train, TreeOptions{})
	forest, _ := FitForest(train, ForestOptions{Trees: 40, MaxFeatures: 3, Seed: 8})
	if MSE(forest, test) > 1.1*MSE(tree, test) {
		t.Fatalf("forest MSE %.3f worse than single tree %.3f on held-out data",
			MSE(forest, test), MSE(tree, test))
	}
}

func TestEmptyForestPredictsZero(t *testing.T) {
	if (&Forest{}).Predict([]float64{1}) != 0 {
		t.Fatal("empty forest should predict 0")
	}
}

func TestMSEAndR2Edges(t *testing.T) {
	m := &LinearRegression{Weights: []float64{0}, Intercept: 5}
	empty := Dataset{}
	if MSE(m, empty) != 0 || R2(m, empty) != 0 {
		t.Fatal("empty dataset metrics nonzero")
	}
	constant := Dataset{X: [][]float64{{1}, {2}}, Y: []float64{5, 5}}
	if R2(m, constant) != 1 {
		t.Fatal("perfect constant prediction should give R²=1")
	}
	mBad := &LinearRegression{Weights: []float64{0}, Intercept: 4}
	if R2(mBad, constant) != 0 {
		t.Fatal("imperfect constant prediction should give R²=0")
	}
}

func TestGAFindsOptimum(t *testing.T) {
	// Maximise -(a−7)² − (b−3)² over a ∈ [0,32), b ∈ [0,16).
	fitness := func(g Genome) float64 {
		da, db := float64(g[0]-7), float64(g[1]-3)
		return -(da*da + db*db)
	}
	best, fit, err := RunGA([]int{32, 16}, fitness, GAOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if best[0] != 7 || best[1] != 3 || fit != 0 {
		t.Fatalf("GA found %v (fitness %v), want [7 3]", best, fit)
	}
}

func TestGADeterministicBySeed(t *testing.T) {
	fitness := func(g Genome) float64 { return float64(g[0] % 13) }
	a, fa, _ := RunGA([]int{100}, fitness, GAOptions{Seed: 5})
	b, fb, _ := RunGA([]int{100}, fitness, GAOptions{Seed: 5})
	if a[0] != b[0] || fa != fb {
		t.Fatal("same seed, different GA result")
	}
}

func TestGAValidation(t *testing.T) {
	f := func(Genome) float64 { return 0 }
	if _, _, err := RunGA(nil, f, GAOptions{}); err == nil {
		t.Fatal("empty genome accepted")
	}
	if _, _, err := RunGA([]int{0}, f, GAOptions{}); err == nil {
		t.Fatal("zero-range gene accepted")
	}
}

// Property: GA results are always within the gene ranges.
func TestGAStaysInRange(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		ranges := []int{5, 9, 2}
		g, _, err := RunGA(ranges, func(g Genome) float64 { return float64(g[0] + g[1] + g[2]) },
			GAOptions{Population: 8, Generations: 5, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		for i, r := range ranges {
			if g[i] < 0 || g[i] >= r {
				return false
			}
		}
		// With enough of a budget it should find the max corner often;
		// in-range is the hard property here.
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: OLS residuals are orthogonal to the design (normal
// equations hold).
func TestOLSNormalEquationsProperty(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		d := linearData(50, 1.0, uint64(seed))
		m, err := FitLinear(d)
		if err != nil {
			return false
		}
		for f := 0; f < d.Features(); f++ {
			var dot float64
			for i, row := range d.X {
				dot += row[f] * (d.Y[i] - m.Predict(row))
			}
			if math.Abs(dot) > 1e-4 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureImportance(t *testing.T) {
	// Target depends only on feature 0; feature 1 is noise.
	rng := simclock.NewRNG(21)
	var d Dataset
	for i := 0; i < 300; i++ {
		x0 := rng.Float64() * 10
		x1 := rng.Float64() * 10
		d.X = append(d.X, []float64{x0, x1})
		d.Y = append(d.Y, 3*x0*x0)
	}
	f, err := FitForest(d, ForestOptions{Trees: 20, MaxFeatures: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance(2)
	if len(imp) != 2 {
		t.Fatalf("importance = %v", imp)
	}
	if imp[0] < 0.9 {
		t.Fatalf("informative feature importance %.3f, noise %.3f", imp[0], imp[1])
	}
	if sum := imp[0] + imp[1]; math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
	// Empty forest: all zeros.
	zero := (&Forest{}).FeatureImportance(2)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("empty forest importance %v", zero)
	}
}
