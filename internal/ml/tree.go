package ml

import (
	"fmt"
	"sort"
)

// TreeOptions bound CART growth.
type TreeOptions struct {
	MaxDepth    int // 0 = unlimited
	MinLeafSize int // minimum samples per leaf; <1 treated as 1
	// MaxFeatures limits how many (randomly chosen) features each
	// split considers; 0 = all. Used by the random forest.
	MaxFeatures int
	rng         splitRNG
}

type splitRNG interface{ Intn(n int) int }

// TreeNode is one node of a regression tree. Exported fields make the
// tree JSON-serialisable for blob storage.
type TreeNode struct {
	Feature   int       `json:"f"` // split feature (leaf: -1)
	Threshold float64   `json:"t"` // go left when x[f] <= t
	Value     float64   `json:"v"` // leaf prediction (mean)
	Gain      float64   `json:"g"` // SSE reduction of this split
	Left      *TreeNode `json:"l,omitempty"`
	Right     *TreeNode `json:"r,omitempty"`
}

// IsLeaf reports whether the node is terminal.
func (n *TreeNode) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a CART regression tree.
type Tree struct {
	Root *TreeNode `json:"root"`
}

// FitTree grows a regression tree by recursive binary splitting on the
// squared-error criterion.
func FitTree(d Dataset, opts TreeOptions) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if opts.MinLeafSize < 1 {
		opts.MinLeafSize = 1
	}
	idx := make([]int, len(d.X))
	for i := range idx {
		idx[i] = i
	}
	root := growNode(d, idx, opts, 1)
	return &Tree{Root: root}, nil
}

// Predict implements Model.
func (t *Tree) Predict(x []float64) float64 {
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Value
}

// Depth returns the maximum depth of the tree (a single leaf = 1).
func (t *Tree) Depth() int { return nodeDepth(t.Root) }

func nodeDepth(n *TreeNode) int {
	if n == nil {
		return 0
	}
	l, r := nodeDepth(n.Left), nodeDepth(n.Right)
	if r > l {
		l = r
	}
	return 1 + l
}

func growNode(d Dataset, idx []int, opts TreeOptions, depth int) *TreeNode {
	mean := meanOf(d.Y, idx)
	node := &TreeNode{Feature: -1, Value: mean}
	if len(idx) < 2*opts.MinLeafSize {
		return node
	}
	if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
		return node
	}
	feat, thresh, gain := bestSplit(d, idx, opts)
	if feat < 0 || gain <= 1e-12 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < opts.MinLeafSize || len(right) < opts.MinLeafSize {
		return node
	}
	node.Feature = feat
	node.Threshold = thresh
	node.Gain = gain
	node.Left = growNode(d, left, opts, depth+1)
	node.Right = growNode(d, right, opts, depth+1)
	return node
}

// bestSplit scans candidate features for the split minimising the
// summed squared error of the two children.
func bestSplit(d Dataset, idx []int, opts TreeOptions) (feature int, threshold, gain float64) {
	p := d.Features()
	features := make([]int, p)
	for i := range features {
		features[i] = i
	}
	if opts.MaxFeatures > 0 && opts.MaxFeatures < p && opts.rng != nil {
		// Fisher–Yates prefix shuffle to pick MaxFeatures features.
		for i := 0; i < opts.MaxFeatures; i++ {
			j := i + opts.rng.Intn(p-i)
			features[i], features[j] = features[j], features[i]
		}
		features = features[:opts.MaxFeatures]
	}

	parentSSE := sseOf(d.Y, idx)
	feature = -1
	type pair struct{ x, y float64 }
	pairs := make([]pair, len(idx))
	for _, f := range features {
		for k, i := range idx {
			pairs[k] = pair{d.X[i][f], d.Y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].x < pairs[b].x })

		// Incremental left/right sums for O(n) split evaluation.
		var lSum, lSq float64
		var rSum, rSq float64
		for _, pr := range pairs {
			rSum += pr.y
			rSq += pr.y * pr.y
		}
		n := float64(len(pairs))
		ln := 0.0
		for k := 0; k < len(pairs)-1; k++ {
			y := pairs[k].y
			lSum += y
			lSq += y * y
			rSum -= y
			rSq -= y * y
			ln++
			if pairs[k].x == pairs[k+1].x {
				continue // can't split between equal values
			}
			rn := n - ln
			sse := (lSq - lSum*lSum/ln) + (rSq - rSum*rSum/rn)
			if g := parentSSE - sse; g > gain {
				gain = g
				feature = f
				threshold = (pairs[k].x + pairs[k+1].x) / 2
			}
		}
	}
	return feature, threshold, gain
}

func meanOf(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var sum float64
	for _, i := range idx {
		sum += y[i]
	}
	return sum / float64(len(idx))
}

func sseOf(y []float64, idx []int) float64 {
	m := meanOf(y, idx)
	var sum float64
	for _, i := range idx {
		d := y[i] - m
		sum += d * d
	}
	return sum
}

// CountLeaves returns the number of leaves, a complexity measure used
// in tests.
func (t *Tree) CountLeaves() int { return countLeaves(t.Root) }

func countLeaves(n *TreeNode) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

func (t *Tree) String() string {
	return fmt.Sprintf("Tree(depth=%d, leaves=%d)", t.Depth(), t.CountLeaves())
}
