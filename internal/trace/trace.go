// Package trace is the decision-tracing half of the observability
// subsystem: lightweight spans with parent/child nesting via context,
// and a bounded append-only JSONL event journal.
//
// Where internal/metrics answers "how often and how fast, in
// aggregate", trace answers "why did THIS job get 32 cores @ 2.2 GHz
// and how long did each step take": every opted-in submission produces
// one trace whose spans cover the plugin, the prediction, and the
// cache/load/optimize stage that answered it.
//
// Everything is nil-safe: methods on a nil *Tracer or nil *Span are
// no-ops and allocate nothing, so the hot path can be instrumented
// unconditionally and deployed untraced at zero cost.
package trace

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ecosched/internal/metrics"
)

// Event is one journal record: a completed span (Kind "span") or a
// point-in-time occurrence (Kind "event"). It is the JSONL wire shape
// of events.jsonl and what `chronus events` replays.
type Event struct {
	Time       time.Time         `json:"time"`
	Kind       string            `json:"kind"`
	Trace      string            `json:"trace,omitempty"`
	Span       string            `json:"span,omitempty"`
	Parent     string            `json:"parent,omitempty"`
	Name       string            `json:"name"`
	DurationNS int64             `json:"duration_ns,omitempty"`
	Err        string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span duration (zero for point events).
func (e Event) Duration() time.Duration { return time.Duration(e.DurationNS) }

// Event kinds.
const (
	KindSpan  = "span"
	KindEvent = "event"
)

// Tracer creates spans and records completed ones into an in-memory
// ring (for live exposition at /trace) and, when configured, a
// persistent Journal. A nil *Tracer is a valid no-op.
type Tracer struct {
	clock    func() time.Time
	journal  *Journal
	idPrefix string // per-process uniqueness for IDs sharing a journal

	// Async journal emission (nil without a journal) and drop metric.
	aw      *asyncWriter
	dropped *metrics.Counter
	ringCap int

	// Head sampling (see sample.go).
	sampleEnabled   bool
	sampleSeed      uint64
	sampleThreshold uint64

	traceCtr atomic.Int64
	spanCtr  atomic.Int64

	mu     sync.Mutex
	recent []Event // ring buffer of completed records
	next   int
	filled bool
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithJournal persists every completed span and event to j.
func WithJournal(j *Journal) Option { return func(t *Tracer) { t.journal = j } }

// WithClock overrides the wall clock (tests, simulated time).
func WithClock(now func() time.Time) Option { return func(t *Tracer) { t.clock = now } }

// WithRecentCap sets the in-memory ring size (default 1024).
func WithRecentCap(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.recent = make([]Event, 0, n)
		}
	}
}

// New builds a tracer.
func New(opts ...Option) *Tracer {
	t := &Tracer{clock: time.Now, recent: make([]Event, 0, 1024)}
	for _, opt := range opts {
		opt(t)
	}
	if t.clock == nil {
		t.clock = time.Now
	}
	// Counters restart with every process, but the journal outlives
	// it; a clock-derived prefix keeps IDs from different processes
	// (e.g. two ecosim runs into one data directory) distinct.
	t.idPrefix = strconv.FormatInt(t.clock().UnixNano(), 36)
	if t.journal != nil {
		t.aw = newAsyncWriter(t.journal, t.ringCap, t.dropped)
	}
	return t
}

// ctxKey carries the current span through a context.
type ctxKey struct{}

// FromContext returns the span recorded in ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a span named name. If ctx carries a span, the new one is
// its child (same trace); otherwise a new trace begins. The returned
// context carries the new span for further nesting. On a nil tracer it
// returns ctx unchanged and a nil span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	//lint:ignore ecolint/zeroallocproof spans allocate by design; latency-bounded deployments run a nil tracer, which returns above before this line
	s := &Span{t: t, name: name, start: t.clock(), sampled: true}
	if parent := FromContext(ctx); parent != nil {
		s.traceID = parent.traceID
		s.parent = parent.spanID
		s.sampled = parent.sampled
	} else {
		//lint:ignore ecolint/zeroallocproof trace-ID mint — once per trace, only with tracing enabled
		s.traceID = fmt.Sprintf("t%s-%04d", t.idPrefix, t.traceCtr.Add(1))
	}
	//lint:ignore ecolint/zeroallocproof span-ID mint — only with tracing enabled; nil-tracer deployments never reach this
	s.spanID = fmt.Sprintf("s%s-%04d", t.idPrefix, t.spanCtr.Add(1))
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Event records a point-in-time occurrence outside any span.
func (t *Tracer) Event(name string, attrs map[string]string) {
	if t == nil {
		return
	}
	t.record(Event{Time: t.clock(), Kind: KindEvent, Name: name, Attrs: attrs})
}

// record appends to the ring and enqueues for the async journal
// drainer. The calling goroutine never performs journal I/O.
func (t *Tracer) record(e Event) {
	t.mu.Lock()
	if cap(t.recent) == 0 {
		//lint:ignore ecolint/zeroallocproof lazy one-time ring allocation on the first recorded event
		t.recent = make([]Event, 0, 1024)
	}
	if len(t.recent) < cap(t.recent) {
		t.recent = append(t.recent, e)
	} else {
		t.recent[t.next] = e
		t.next = (t.next + 1) % cap(t.recent)
		t.filled = true
	}
	aw := t.aw
	t.mu.Unlock()
	if aw != nil {
		aw.enqueue(e)
	}
}

// Recent returns the retained completed records, oldest first.
func (t *Tracer) Recent() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.filled {
		return append([]Event(nil), t.recent...)
	}
	out := make([]Event, 0, len(t.recent))
	out = append(out, t.recent[t.next:]...)
	out = append(out, t.recent[:t.next]...)
	return out
}

// Span is one timed stage of a trace. A nil *Span is a valid no-op.
type Span struct {
	t       *Tracer
	traceID string
	spanID  string
	parent  string
	name    string
	start   time.Time

	sampled bool

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// TraceID returns the trace this span belongs to ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SetAttr attaches a key=value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		//lint:ignore ecolint/zeroallocproof attribute maps exist only on live spans; a nil span (tracing off) returns above
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End closes the span and records it. err (may be nil) is the stage's
// outcome. End is idempotent; only the first call records. A span
// dropped by head sampling is discarded here — unless it ended in an
// error, which is always recorded.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	end := s.t.clock()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	if !s.sampled && err == nil {
		s.mu.Unlock()
		return
	}
	e := Event{
		Time: s.start, Kind: KindSpan,
		Trace: s.traceID, Span: s.spanID, Parent: s.parent,
		Name:       s.name,
		DurationNS: int64(end.Sub(s.start)),
		Attrs:      s.attrs,
	}
	if err != nil {
		e.Err = err.Error()
	}
	s.mu.Unlock()
	s.t.record(e)
}
