package trace

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// A nil tracer must be a complete no-op on the hot path: same context
// back, nil span, and no panics from any span method.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	ctx2, span := tr.Start(ctx, "anything")
	if ctx2 != ctx {
		t.Fatal("nil tracer changed the context")
	}
	if span != nil {
		t.Fatal("nil tracer returned a live span")
	}
	span.SetAttr("k", "v")
	span.End(nil)
	span.End(errors.New("boom"))
	if got := span.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
	tr.Event("e", nil)
	if got := tr.Recent(); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
}

func TestSpanNesting(t *testing.T) {
	tr := New()
	ctx, root := tr.Start(context.Background(), "root")
	if FromContext(ctx) != root {
		t.Fatal("context does not carry the root span")
	}
	ctx2, child := tr.Start(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %q != root trace %q", child.TraceID(), root.TraceID())
	}
	if FromContext(ctx2) != child {
		t.Fatal("context does not carry the child span")
	}
	child.SetAttr("k", "v")
	child.End(nil)
	root.End(nil)

	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("recent = %d records, want 2", len(recent))
	}
	// Child ended first, so it is recorded first.
	c, r := recent[0], recent[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("order: %s, %s", c.Name, r.Name)
	}
	if c.Parent != r.Span || c.Trace != r.Trace {
		t.Fatalf("child %+v not linked to root %+v", c, r)
	}
	if c.Attrs["k"] != "v" {
		t.Fatalf("attrs = %v", c.Attrs)
	}
	// A second trace gets a fresh ID.
	_, other := tr.Start(context.Background(), "other")
	if other.TraceID() == root.TraceID() {
		t.Fatal("independent traces share an ID")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := New()
	_, span := tr.Start(context.Background(), "once")
	span.End(nil)
	span.End(errors.New("again"))
	if got := len(tr.Recent()); got != 1 {
		t.Fatalf("recorded %d times, want 1", got)
	}
}

func TestSpanError(t *testing.T) {
	tr := New()
	_, span := tr.Start(context.Background(), "fails")
	span.End(errors.New("model missing"))
	if got := tr.Recent()[0].Err; got != "model missing" {
		t.Fatalf("err = %q", got)
	}
}

func TestRecentRingWraps(t *testing.T) {
	tr := New(WithRecentCap(4))
	for i := 0; i < 10; i++ {
		tr.Event("e", map[string]string{"i": string(rune('0' + i))})
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring kept %d, want 4", len(recent))
	}
	// Oldest first: events 6..9.
	if recent[0].Attrs["i"] != "6" || recent[3].Attrs["i"] != "9" {
		t.Fatalf("ring order: %v ... %v", recent[0].Attrs, recent[3].Attrs)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(WithJournal(j))
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child")
	child.End(nil)
	root.End(nil)
	tr.Event("job.start", map[string]string{AttrJobID: "7"})
	// Journal emission is async: the drainer must be flushed and
	// stopped before the journal is closed and read.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("replayed %d events, want 3", len(events))
	}
	if events[0].Name != "child" || events[1].Name != "root" || events[2].Name != "job.start" {
		t.Fatalf("order: %s %s %s", events[0].Name, events[1].Name, events[2].Name)
	}
	if events[2].Kind != KindEvent || events[2].Attrs[AttrJobID] != "7" {
		t.Fatalf("event record: %+v", events[2])
	}
}

// The journal must stay bounded: hitting the size cap rotates the
// current file to .old and starts fresh, keeping at most two
// generations on disk.
func TestJournalRotationAtSizeCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	const cap = 2048
	j, err := OpenJournal(path, cap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := j.Append(Event{Time: time.Unix(int64(i), 0), Kind: KindEvent, Name: "tick"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > cap {
		t.Fatalf("journal %d bytes exceeds cap %d", st.Size(), cap)
	}
	old, err := os.Stat(path + ".old")
	if err != nil {
		t.Fatalf("no rotated generation: %v", err)
	}
	if old.Size() > cap {
		t.Fatalf("rotated generation %d bytes exceeds cap %d", old.Size(), cap)
	}

	// Replay covers both generations, oldest first, and is itself
	// bounded (≤ 2 generations of events survive).
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || len(events) >= 200 {
		t.Fatalf("replayed %d events; want a bounded, non-empty tail", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time.Before(events[i-1].Time) {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

// A crash mid-append leaves a torn final line; replay must skip it
// rather than fail.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Event{Kind: KindEvent, Name: "whole"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"event","name":"to`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "whole" {
		t.Fatalf("events = %+v", events)
	}
}

func TestReadJournalMissing(t *testing.T) {
	_, err := ReadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Event{Name: "late"}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestTraceForAndTree(t *testing.T) {
	events := []Event{
		{Kind: KindSpan, Trace: "t1", Span: "s1", Name: "slurm.submit", Attrs: map[string]string{AttrJobID: "3"}},
		{Kind: KindSpan, Trace: "t1", Span: "s2", Parent: "s1", Name: "eco.submit", Attrs: map[string]string{"verdict": "rewritten"}},
		{Kind: KindSpan, Trace: "t2", Span: "s3", Name: "slurm.submit", Attrs: map[string]string{AttrJobID: "4"}},
	}
	got := TraceFor(events, "3")
	if len(got) != 2 {
		t.Fatalf("TraceFor(3) = %d events, want 2", len(got))
	}
	if TraceFor(events, "99") != nil {
		t.Fatal("TraceFor(99) found something")
	}
	var b strings.Builder
	WriteTree(&b, got)
	out := b.String()
	if !strings.Contains(out, "slurm.submit") || !strings.Contains(out, "  eco.submit") {
		t.Fatalf("tree:\n%s", out)
	}
	if !strings.Contains(out, "verdict=rewritten") {
		t.Fatalf("tree lacks attrs:\n%s", out)
	}
}

func TestSince(t *testing.T) {
	t0 := time.Unix(100, 0)
	events := []Event{
		{Time: t0, Name: "old"},
		{Time: t0.Add(time.Hour), Name: "new"},
	}
	got := Since(events, t0.Add(time.Minute))
	if len(got) != 1 || got[0].Name != "new" {
		t.Fatalf("Since = %+v", got)
	}
}

// Two tracers sharing one journal (two process lifetimes writing to
// the same data directory) must not produce colliding trace IDs, or
// TraceFor would merge unrelated runs.
func TestTraceIDsUniqueAcrossTracers(t *testing.T) {
	t1 := New(WithClock(func() time.Time { return time.Unix(1, 0) }))
	t2 := New(WithClock(func() time.Time { return time.Unix(2, 0) }))
	_, s1 := t1.Start(context.Background(), "run1")
	_, s2 := t2.Start(context.Background(), "run2")
	if s1.TraceID() == s2.TraceID() {
		t.Fatalf("trace ID %q collides across tracers", s1.TraceID())
	}
}

// With duplicate job IDs in one journal (job counters restart per
// deployment), TraceFor must return the latest run's trace.
func TestTraceForLatestWins(t *testing.T) {
	events := []Event{
		{Kind: KindSpan, Trace: "old", Span: "s1", Name: "slurm.submit", Attrs: map[string]string{AttrJobID: "13"}},
		{Kind: KindSpan, Trace: "new", Span: "s2", Name: "slurm.submit", Attrs: map[string]string{AttrJobID: "13"}},
	}
	got := TraceFor(events, "13")
	if len(got) != 1 || got[0].Trace != "new" {
		t.Fatalf("TraceFor = %+v, want the latest trace", got)
	}
}

func TestWithClock(t *testing.T) {
	now := time.Unix(42, 0)
	tr := New(WithClock(func() time.Time { return now }))
	_, span := tr.Start(context.Background(), "timed")
	now = now.Add(3 * time.Second)
	span.End(nil)
	e := tr.Recent()[0]
	if !e.Time.Equal(time.Unix(42, 0)) || e.Duration() != 3*time.Second {
		t.Fatalf("time=%v dur=%v", e.Time, e.Duration())
	}
}
