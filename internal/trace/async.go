// Async trace emission: the hot path enqueues completed records into
// small per-shard rings and returns; a single background drainer
// collects, restores global order, and batches journal appends. The
// submit goroutine therefore never touches the filesystem — at fleet
// rates a synchronous JSON-marshal + write per span would dominate the
// submit budget. The rings are bounded: when a shard is full the event
// is dropped and counted (chronus.trace.dropped), never blocked on —
// tracing must not apply backpressure to scheduling.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"

	"ecosched/internal/metrics"
)

// MetricDropped counts trace records dropped because the async ring
// was full (or the tracer already closed). Nonzero means the journal
// is incomplete — loadgen reports it next to throughput. Exported so
// the root package can read the count out of a snapshot by name.
const MetricDropped = "chronus.trace.dropped"

// asyncShardCount is the number of enqueue rings. Power of two so the
// shard pick is a mask. Few shards suffice: the ring critical section
// is an append, and the drainer visits every shard per flush.
const asyncShardCount = 4

// defaultRingCap bounds each shard's ring (events buffered between
// drainer flushes) — total buffering is asyncShardCount × ringCap.
const defaultRingCap = 1024

// WithMetrics counts drops into r's chronus.trace.dropped counter.
func WithMetrics(r *metrics.Registry) Option {
	return func(t *Tracer) { t.dropped = r.Counter(MetricDropped) }
}

// WithRingCap sets the per-shard async ring capacity (default 1024).
// Only meaningful together with WithJournal.
func WithRingCap(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.ringCap = n
		}
	}
}

// Drain blocks until every record enqueued before the call is either
// written to the journal or counted as dropped. It is the read
// barrier for journal consumers (`chronus events`, tests, shutdown):
// after Drain returns, ReadJournal sees everything that happened
// before it. Nil-safe and a no-op without a journal.
func (t *Tracer) Drain() {
	if t == nil || t.aw == nil {
		return
	}
	t.aw.drain()
}

// Close drains the tracer and stops the background drainer. It does
// NOT close the journal — the journal's owner does that, after Close.
// Idempotent and nil-safe; records emitted after Close are counted as
// dropped.
func (t *Tracer) Close() error {
	if t == nil || t.aw == nil {
		return nil
	}
	t.aw.close()
	return nil
}

// asyncEntry is one enqueued record, stamped with the global sequence
// so the drainer can restore cross-shard order before writing.
type asyncEntry struct {
	seq uint64
	e   Event
}

// asyncShard is one producer ring: a fixed-capacity slice appended to
// under a short mutex. The drainer swaps in the spare slice, so the
// steady state allocates nothing on either side.
type asyncShard struct {
	mu    sync.Mutex
	buf   []asyncEntry
	spare []asyncEntry
	// Pad to a full cache line: producers hash across shards to avoid
	// contention, which false sharing would silently reintroduce
	// (ecolint/atomicshape checks the arithmetic).
	_ [8]byte
}

// asyncWriter owns the rings and the drainer goroutine.
type asyncWriter struct {
	journal *Journal
	dropped *metrics.Counter // nil-safe

	seq    atomic.Uint64
	closed atomic.Bool
	shards [asyncShardCount]asyncShard

	wake chan struct{} // cap 1: coalesced flush signal
	quit chan struct{}
	done chan struct{} // drainer exited

	// mu guards the barrier bookkeeping; cond wakes Drain waiters.
	mu       sync.Mutex
	cond     sync.Cond
	written  uint64 // records handed to the journal
	droppedN uint64 // records dropped at enqueue
	stopped  bool   // drainer exited (final flush done)
}

func newAsyncWriter(j *Journal, ringCap int, dropped *metrics.Counter) *asyncWriter {
	if ringCap <= 0 {
		ringCap = defaultRingCap
	}
	aw := &asyncWriter{
		journal: j,
		dropped: dropped,
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	aw.cond.L = &aw.mu
	for i := range aw.shards {
		aw.shards[i].buf = make([]asyncEntry, 0, ringCap)
		aw.shards[i].spare = make([]asyncEntry, 0, ringCap)
	}
	go aw.run()
	return aw
}

// enqueue hands one record to the drainer. Never blocks: a full ring
// (or a closed writer) drops the record and counts it.
func (aw *asyncWriter) enqueue(e Event) {
	if aw.closed.Load() {
		aw.noteDropped(false)
		return
	}
	seq := aw.seq.Add(1)
	s := &aw.shards[seq&(asyncShardCount-1)]
	s.mu.Lock()
	if len(s.buf) == cap(s.buf) {
		s.mu.Unlock()
		aw.noteDropped(true)
		return
	}
	s.buf = append(s.buf, asyncEntry{seq: seq, e: e})
	s.mu.Unlock()
	select {
	case aw.wake <- struct{}{}:
	default:
	}
}

// noteDropped counts a drop. counted reports whether the record took a
// sequence number (ring-full drop) and therefore owes the Drain
// barrier progress; post-close drops never took one.
func (aw *asyncWriter) noteDropped(counted bool) {
	if counted {
		aw.mu.Lock()
		aw.droppedN++
		aw.mu.Unlock()
		aw.cond.Broadcast()
	}
	aw.dropped.Inc()
}

// run is the drainer: flush on every wake, final flush on quit.
func (aw *asyncWriter) run() {
	for {
		select {
		case <-aw.wake:
			aw.flush()
		case <-aw.quit:
			aw.flush()
			aw.mu.Lock()
			aw.stopped = true
			aw.mu.Unlock()
			aw.cond.Broadcast()
			close(aw.done)
			return
		}
	}
}

// flush takes every buffered record, restores sequence order, and
// appends the batch to the journal in one buffered write pass.
func (aw *asyncWriter) flush() {
	var batch []asyncEntry
	var taken [asyncShardCount][]asyncEntry
	for i := range aw.shards {
		s := &aw.shards[i]
		s.mu.Lock()
		taken[i] = s.buf
		s.buf = s.spare[:0]
		s.spare = nil
		s.mu.Unlock()
		batch = append(batch, taken[i]...)
	}
	if len(batch) > 0 {
		sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
		events := make([]Event, len(batch))
		for i := range batch {
			events[i] = batch[i].e
		}
		aw.journal.AppendBatch(events) // journal errors are non-fatal by design
	}
	// Return the taken slices as the next spares, cleared so retained
	// Event pointers don't outlive the flush.
	for i := range aw.shards {
		if taken[i] == nil {
			continue
		}
		for k := range taken[i] {
			taken[i][k] = asyncEntry{}
		}
		s := &aw.shards[i]
		s.mu.Lock()
		s.spare = taken[i][:0]
		s.mu.Unlock()
	}
	if len(batch) > 0 {
		aw.mu.Lock()
		aw.written += uint64(len(batch))
		aw.mu.Unlock()
		aw.cond.Broadcast()
	}
}

// drain blocks until everything enqueued before the call is written or
// dropped (or the drainer has exited, which implies the same).
func (aw *asyncWriter) drain() {
	target := aw.seq.Load()
	select {
	case aw.wake <- struct{}{}: // nudge even if nothing new arrives
	default:
	}
	aw.mu.Lock()
	for !aw.stopped && aw.written+aw.droppedN < target {
		aw.cond.Wait()
	}
	aw.mu.Unlock()
}

// close stops the drainer after a final flush. Idempotent.
func (aw *asyncWriter) close() {
	if aw.closed.Swap(true) {
		<-aw.done
		return
	}
	close(aw.quit)
	<-aw.done
}
