package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultJournalMaxBytes bounds events.jsonl before rotation: one
// generation of history is kept as <path>.old, so the journal never
// holds more than ~2× this on disk.
const DefaultJournalMaxBytes = 1 << 20

// Journal is a bounded append-only JSONL event log. When an append
// would push the file past the size cap, the file rotates: the current
// file becomes <path>.old (replacing any previous generation) and a
// fresh file starts. A nil *Journal is a valid no-op sink.
type Journal struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
}

// OpenJournal opens (creating if needed) the journal at path. A
// maxBytes ≤ 0 uses DefaultJournalMaxBytes.
func OpenJournal(path string, maxBytes int64) (*Journal, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultJournalMaxBytes
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("trace: journal dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: journal: %w", err)
	}
	return &Journal{path: path, maxBytes: maxBytes, f: f, size: st.Size()}, nil
}

// Append writes one event as a JSON line, rotating first if the line
// would exceed the size cap.
//
//lint:ignore ecolint/lockscope the journal IS the I/O sink; the write must be serialized with rotation under j.mu
func (j *Journal) Append(e Event) error {
	if j == nil {
		return nil
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("trace: journal: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("trace: journal %s is closed", j.path)
	}
	if j.size > 0 && j.size+int64(len(line)) > j.maxBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := j.f.Write(line)
	j.size += int64(n)
	if err != nil {
		return fmt.Errorf("trace: journal: %w", err)
	}
	return nil
}

// AppendBatch writes a batch of events in one buffered pass: lines are
// marshalled outside the lock, accumulated, and flushed to the file at
// rotation boundaries and at the end — one or two writes per batch
// instead of one per event, with rotation points byte-identical to a
// sequence of Append calls (the per-line size check is preserved).
func (j *Journal) AppendBatch(events []Event) error {
	if j == nil || len(events) == 0 {
		return nil
	}
	lines := make([][]byte, 0, len(events))
	for _, e := range events {
		line, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("trace: journal: %w", err)
		}
		lines = append(lines, append(line, '\n'))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("trace: journal %s is closed", j.path)
	}
	var buf []byte
	for _, line := range lines {
		// Same per-line condition as Append, against the effective size
		// including the not-yet-flushed buffer.
		if pending := j.size + int64(len(buf)); pending > 0 && pending+int64(len(line)) > j.maxBytes {
			if err := j.flushLocked(&buf); err != nil {
				return err
			}
			if j.size > 0 {
				if err := j.rotateLocked(); err != nil {
					return err
				}
			}
		}
		buf = append(buf, line...)
	}
	return j.flushLocked(&buf)
}

// flushLocked writes the pending buffer and resets it.
func (j *Journal) flushLocked(buf *[]byte) error {
	if len(*buf) == 0 {
		return nil
	}
	n, err := j.f.Write(*buf)
	j.size += int64(n)
	*buf = (*buf)[:0]
	if err != nil {
		return fmt.Errorf("trace: journal: %w", err)
	}
	return nil
}

// rotateLocked moves the current file to <path>.old and starts fresh.
func (j *Journal) rotateLocked() error {
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("trace: journal rotate: %w", err)
	}
	if err := os.Rename(j.path, j.path+".old"); err != nil {
		return fmt.Errorf("trace: journal rotate: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("trace: journal rotate: %w", err)
	}
	j.f, j.size = f, 0
	return nil
}

// Sync flushes the journal to stable storage.
//
//lint:ignore ecolint/lockscope fsync must see a quiescent file; holding j.mu is the point
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Further appends fail.
//
//lint:ignore ecolint/lockscope close races with concurrent appends unless serialized under j.mu
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// ReadJournal replays the journal at path, oldest event first,
// including the rotated <path>.old generation if present. A missing
// journal yields os.ErrNotExist; a torn final line (crash mid-append)
// is skipped, not an error.
func ReadJournal(path string) ([]Event, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	var out []Event
	for _, p := range []string{path + ".old", path} {
		events, err := readJournalFile(p)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return nil, err
		}
		out = append(out, events...)
	}
	return out, nil
}

func readJournalFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			continue // torn tail from a crash mid-append
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// AttrJobID is the attribute linking a submit trace to its Slurm job.
const AttrJobID = "job_id"

// TraceFor collects the events of the trace whose root span carries
// job_id == jobID, in journal order. Job IDs restart with each
// deployment, so several traces in one journal can carry the same id;
// the latest wins — "the job you just ran", not a stale earlier run.
func TraceFor(events []Event, jobID string) []Event {
	var id string
	for _, e := range events {
		if e.Kind == KindSpan && e.Attrs[AttrJobID] == jobID {
			id = e.Trace
		}
	}
	if id == "" {
		return nil
	}
	var out []Event
	for _, e := range events {
		if e.Trace == id {
			out = append(out, e)
		}
	}
	return out
}

// Since filters events to those at or after t.
func Since(events []Event, t time.Time) []Event {
	var out []Event
	for _, e := range events {
		if !e.Time.Before(t) {
			out = append(out, e)
		}
	}
	return out
}

// WriteTree renders one trace's spans as an indented tree with
// per-stage durations and attributes — the `chronus trace <job>`
// output.
func WriteTree(w io.Writer, events []Event) {
	children := make(map[string][]Event)
	for _, e := range events {
		if e.Kind != KindSpan {
			continue
		}
		children[e.Parent] = append(children[e.Parent], e)
	}
	var walk func(parent string, depth int)
	walk = func(parent string, depth int) {
		for _, e := range children[parent] {
			fmt.Fprintf(w, "%s%-24s %12v%s%s\n",
				strings.Repeat("  ", depth), e.Name, e.Duration().Round(time.Microsecond),
				formatAttrs(e.Attrs), formatErr(e.Err))
			walk(e.Span, depth+1)
		}
	}
	walk("", 0)
}

// WriteEvents renders events one per line — the `chronus events`
// output.
func WriteEvents(w io.Writer, events []Event) {
	for _, e := range events {
		dur := ""
		if e.Kind == KindSpan {
			dur = fmt.Sprintf(" dur=%v", e.Duration().Round(time.Microsecond))
		}
		trace := ""
		if e.Trace != "" {
			trace = " trace=" + e.Trace
		}
		fmt.Fprintf(w, "%s %-5s %-24s%s%s%s%s\n",
			e.Time.UTC().Format(time.RFC3339Nano), e.Kind, e.Name, trace, dur,
			formatAttrs(e.Attrs), formatErr(e.Err))
	}
}

func formatAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, attrs[k])
	}
	return b.String()
}

func formatErr(s string) string {
	if s == "" {
		return ""
	}
	return fmt.Sprintf(" error=%q", s)
}
