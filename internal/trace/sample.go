// Deterministic head sampling: at fleet rates even the async journal
// cannot hold every span of every submission, so traces are sampled at
// the head — the keep/drop decision is made when the root span starts,
// from a hash of a stable key (the job ID), and every span of a kept
// trace is kept. Hash-based (not counter-based) sampling makes the
// decision reproducible: the same seed and job stream always keeps the
// same traces, so replayed simulations journal identical spans.
//
// Errors override sampling: a span that ends with an error is always
// recorded, and callers gate degraded-path events on SampleKey only
// for the healthy case.
package trace

import (
	"context"
	"math"
)

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit
// hash, here mapping (seed, key) onto a uniform [0, 2^64) value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// WithHeadSampling keeps roughly rate (in [0, 1]) of keyed traces,
// decided deterministically from seed and the trace's key. rate >= 1
// keeps everything (sampling disabled); rate <= 0 keeps only errors.
// Unkeyed Start spans are always kept.
func WithHeadSampling(rate float64, seed uint64) Option {
	return func(t *Tracer) {
		if rate >= 1 || math.IsNaN(rate) {
			t.sampleEnabled = false
			return
		}
		t.sampleEnabled = true
		t.sampleSeed = seed
		if rate <= 0 {
			t.sampleThreshold = 0
			return
		}
		t.sampleThreshold = uint64(rate * float64(math.MaxUint64))
	}
}

// SampleKey reports whether a trace or event keyed by key is kept
// under the configured head-sampling rate. Without sampling configured
// everything is kept; on a nil tracer nothing is (nothing would be
// recorded anyway).
func (t *Tracer) SampleKey(key uint64) bool {
	if t == nil {
		return false
	}
	if !t.sampleEnabled {
		return true
	}
	return splitmix64(t.sampleSeed^key) < t.sampleThreshold
}

// StartKeyed is Start with a head-sampling key: a root span is kept
// per SampleKey(key); a child span inherits its parent's decision so
// traces stay whole. An unsampled span is a live no-op — attributes
// and nesting work, but End discards the record unless the span ends
// in an error.
//
//lint:ignore ecolint/metricname forwarding wrapper — the name constant is enforced at StartKeyed call sites via its own sink
func (t *Tracer) StartKeyed(ctx context.Context, name string, key uint64) (context.Context, *Span) {
	ctx, s := t.Start(ctx, name)
	if s == nil {
		return ctx, nil
	}
	if FromContext(ctx) == s && s.parent == "" {
		s.sampled = t.SampleKey(key)
	}
	return ctx, s
}
