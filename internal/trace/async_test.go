package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ecosched/internal/metrics"
)

// Emission order through the async path must match program order: the
// drainer restores the global sequence before writing, so a replayed
// journal reads exactly like the synchronous one did.
func TestAsyncJournalPreservesOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(WithJournal(j))
	const n = 500
	for i := 0; i < n; i++ {
		tr.Event("tick", map[string]string{"i": fmt.Sprint(i)})
	}
	tr.Drain()
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("journal has %d events after Drain, want %d", len(events), n)
	}
	for i, e := range events {
		if e.Attrs["i"] != fmt.Sprint(i) {
			t.Fatalf("event %d out of order: attrs=%v", i, e.Attrs)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// Drain is a barrier: everything emitted before it must be readable
// from the journal before Close, even under concurrent emitters.
func TestDrainFlushesBeforeClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	r := metrics.New()
	tr := New(WithJournal(j), WithMetrics(r))
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, s := tr.Start(context.Background(), "work")
				s.End(nil)
			}
		}()
	}
	wg.Wait()
	tr.Drain()
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	dropped := r.Snapshot().Counters[MetricDropped]
	if int64(len(events))+dropped != goroutines*per {
		t.Fatalf("journaled %d + dropped %d, want %d accounted for", len(events), dropped, goroutines*per)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// A full ring drops the record — never blocks — and every drop is
// counted, both in the barrier bookkeeping and the drop metric. The
// writer here has no running drainer, so the rings fill
// deterministically.
func TestAsyncRingFullDropsAndCounts(t *testing.T) {
	r := metrics.New()
	aw := &asyncWriter{
		dropped: r.Counter(MetricDropped),
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	aw.cond.L = &aw.mu
	for i := range aw.shards {
		aw.shards[i].buf = make([]asyncEntry, 0, 1)
		aw.shards[i].spare = make([]asyncEntry, 0, 1)
	}
	const total = 100
	for i := 0; i < total; i++ {
		aw.enqueue(Event{Kind: KindEvent, Name: "tick"})
	}
	buffered := 0
	for i := range aw.shards {
		buffered += len(aw.shards[i].buf)
	}
	if buffered != asyncShardCount {
		t.Fatalf("buffered %d, want one per shard (%d)", buffered, asyncShardCount)
	}
	if got := r.Snapshot().Counters[MetricDropped]; got != total-asyncShardCount {
		t.Fatalf("drop metric = %d, want %d", got, total-asyncShardCount)
	}
	// The barrier must account for drops: after one manual flush,
	// written + dropped covers every sequence number and drain returns.
	aw.flush()
	done := make(chan struct{})
	go func() {
		aw.drain()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drain blocked despite drops being accounted")
	}
}

// Records emitted after Close are dropped and counted, and Close is
// idempotent.
func TestEmitAfterCloseDropsCounted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := metrics.New()
	tr := New(WithJournal(j), WithMetrics(r))
	tr.Event("before", nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	tr.Event("after", nil)
	tr.Drain() // must not hang on the post-close record
	if got := r.Snapshot().Counters[MetricDropped]; got != 1 {
		t.Fatalf("drop metric = %d, want 1 (the post-close event)", got)
	}
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "before" {
		t.Fatalf("journal = %+v, want just the pre-close event", events)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// AppendBatch must rotate at exactly the same byte offsets as a
// sequence of Append calls — batching is a syscall optimisation, not a
// change in journal semantics.
func TestAppendBatchMatchesSequentialAppend(t *testing.T) {
	dir := t.TempDir()
	events := make([]Event, 120)
	for i := range events {
		events[i] = Event{Time: time.Unix(int64(i), 0).UTC(), Kind: KindEvent, Name: "tick"}
	}
	const cap = 2048

	seqPath := filepath.Join(dir, "seq.jsonl")
	js, err := OpenJournal(seqPath, cap)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := js.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}

	batchPath := filepath.Join(dir, "batch.jsonl")
	jb, err := OpenJournal(batchPath, cap)
	if err != nil {
		t.Fatal(err)
	}
	// Uneven batch sizes so rotation boundaries land mid-batch.
	for i := 0; i < len(events); {
		n := 7
		if i+n > len(events) {
			n = len(events) - i
		}
		if err := jb.AppendBatch(events[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	if err := jb.Close(); err != nil {
		t.Fatal(err)
	}

	for _, suffix := range []string{"", ".old"} {
		want, err := os.ReadFile(seqPath + suffix)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(batchPath + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("generation %q differs: sequential %d bytes, batched %d bytes", suffix, len(want), len(got))
		}
	}
}

// A torn tail from a crash mid-batch replays cleanly: whole lines
// survive, the fragment is skipped.
func TestBatchedWriterTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Event{
		{Kind: KindEvent, Name: "one"},
		{Kind: KindEvent, Name: "two"},
	}
	if err := j.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"event","name":"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Name != "one" || events[1].Name != "two" {
		t.Fatalf("events = %+v", events)
	}
}

func TestAppendBatchAfterCloseFails(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "events.jsonl"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBatch([]Event{{Name: "late"}}); err == nil {
		t.Fatal("AppendBatch after close succeeded")
	}
}

// Head sampling is deterministic in (seed, key): the same stream keeps
// the same traces on every run, errors are always kept, and child
// spans follow their root's decision.
func TestHeadSamplingDeterministic(t *testing.T) {
	tr1 := New(WithHeadSampling(0.5, 42))
	tr2 := New(WithHeadSampling(0.5, 42))
	kept := 0
	for key := uint64(0); key < 1000; key++ {
		if tr1.SampleKey(key) != tr2.SampleKey(key) {
			t.Fatalf("sampling decision for key %d differs across tracers with one seed", key)
		}
		if tr1.SampleKey(key) {
			kept++
		}
	}
	if kept < 400 || kept > 600 {
		t.Fatalf("kept %d/1000 at rate 0.5, want roughly half", kept)
	}
	// A different seed keeps a different subset.
	tr3 := New(WithHeadSampling(0.5, 43))
	same := 0
	for key := uint64(0); key < 1000; key++ {
		if tr1.SampleKey(key) == tr3.SampleKey(key) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seed has no effect on the sampled subset")
	}
}

func TestHeadSamplingSpans(t *testing.T) {
	tr := New(WithHeadSampling(0, 1)) // keep nothing (but errors)
	ctx, root := tr.StartKeyed(context.Background(), "submit", 7)
	_, child := tr.StartKeyed(ctx, "predict", 7)
	child.End(nil)
	root.End(nil)
	if got := len(tr.Recent()); got != 0 {
		t.Fatalf("recorded %d unsampled spans, want 0", got)
	}
	// Errors override the sampling decision.
	_, failed := tr.StartKeyed(context.Background(), "submit", 8)
	failed.End(errors.New("boom"))
	if got := len(tr.Recent()); got != 1 {
		t.Fatalf("recorded %d spans, want the error span", got)
	}

	// rate >= 1 and unconfigured tracers keep everything; unkeyed
	// Start is never sampled away.
	all := New(WithHeadSampling(1, 1))
	if !all.SampleKey(123) {
		t.Fatal("rate 1 dropped a key")
	}
	_, s := tr.Start(context.Background(), "unkeyed")
	s.End(nil)
	if got := len(tr.Recent()); got != 2 {
		t.Fatalf("unkeyed span not recorded (recent=%d)", got)
	}
	var nilT *Tracer
	if nilT.SampleKey(1) {
		t.Fatal("nil tracer sampled a key")
	}
}
