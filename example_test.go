package ecosched_test

import (
	"fmt"
	"log"
	"os"
	"time"

	"ecosched"
)

// ExampleNewDeployment walks the paper's full pipeline: benchmark,
// train, pre-load, then submit an opted-in job that the eco plugin
// rewrites to the energy-efficient configuration.
func ExampleNewDeployment() {
	dir, err := os.MkdirTemp("", "example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	d, err := ecosched.New(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	if _, err := d.BenchmarkConfigs(ecosched.QuickSweepConfigs(), 0); err != nil {
		log.Fatal(err)
	}
	meta, err := d.TrainModel("brute-force")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := d.PreloadModel(meta.ID); err != nil {
		log.Fatal(err)
	}

	job, err := d.SubmitHPCGOptIn()
	if err != nil {
		log.Fatal(err)
	}
	done, err := d.Cluster.WaitFor(job.ID)
	if err != nil {
		log.Fatal(err)
	}
	rec, _ := d.Cluster.Accounting().Record(done.ID)
	fmt.Printf("rewritten to %d cores @ %.1f GHz\n", rec.Cores, float64(rec.FreqKHz)/1e6)
	fmt.Printf("state: %s\n", done.State)
	// Output:
	// rewritten to 32 cores @ 2.2 GHz
	// state: COMPLETED
}

// ExampleDeployment_EstimateEnergyKJ compares the paper's standard and
// best configurations on the calibrated node model.
func ExampleDeployment_EstimateEnergyKJ() {
	dir, _ := os.MkdirTemp("", "example")
	defer os.RemoveAll(dir)
	d, err := ecosched.New(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	stdKJ, _ := d.EstimateEnergyKJ(ecosched.StandardConfig())
	bestKJ, _ := d.EstimateEnergyKJ(ecosched.BestConfig())
	fmt.Printf("standard: %.0f kJ\n", stdKJ)
	fmt.Printf("best:     %.0f kJ\n", bestKJ)
	fmt.Printf("saving:   %.0f%%\n", 100*(1-bestKJ/stdKJ))
	// Output:
	// standard: 240 kJ
	// best:     213 kJ
	// saving:   11%
}

// ExampleEnergyMarket_BestStart finds the cheapest window for an HPCG
// job in the synthetic electricity market (§6.2.4).
func ExampleEnergyMarket_BestStart() {
	market := ecosched.NewEnergyMarket(2023)
	window := time.Date(2023, 5, 10, 0, 0, 0, 0, time.UTC)
	start, cost, err := market.BestStart(
		window, window.Add(24*time.Hour), 19*time.Minute, 190, 15*time.Minute, ecosched.MinCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("start at %s for %.4f EUR\n", start.Format("15:04"), cost)
	// Output:
	// start at 12:45 for 0.0083 EUR
}

// ExampleGPUModel_TuneWithinPerfLoss reproduces the §6.2.2 cited
// result: large energy savings for a bounded performance loss.
func ExampleGPUModel_TuneWithinPerfLoss() {
	res, err := ecosched.DefaultGPU().TuneWithinPerfLoss(0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core %d MHz, mem %d MHz\n", res.Best.CoreMHz, res.Best.MemMHz)
	fmt.Printf("saving %.1f%% at %.2f%% loss\n", res.EnergySavingPct, res.PerfLossPct)
	// Output:
	// core 1150 MHz, mem 3000 MHz
	// saving 27.5% at 0.89% loss
}
